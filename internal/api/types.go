package api

import (
	"sort"
	"time"

	"repro"
	"repro/internal/cube"
	"repro/internal/model"
	"repro/internal/viz"
)

// Group is the wire form of one explanation group.
type Group struct {
	// Key round-trips through the key parameter of the per-group
	// endpoints ("gender=male,state=CA").
	Key    string `json:"key"`
	Phrase string `json:"phrase"`
	Icons  string `json:"icons"`
	// State is the two-letter geo-condition ("" in framework mode).
	State string  `json:"state,omitempty"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Count int     `json:"count"`
	// Share is the fraction of the query's ratings this group covers.
	Share float64 `json:"share"`
}

func groupDTO(g maprat.GroupResult) Group {
	return Group{
		Key:    g.Key.Param(),
		Phrase: g.Phrase,
		Icons:  g.Icons,
		State:  g.State,
		Mean:   g.Agg.Mean(),
		Std:    g.Agg.Std(),
		Count:  g.Agg.Count,
		Share:  g.Share,
	}
}

func groupDTOs(gs []maprat.GroupResult) []Group {
	out := make([]Group, len(gs))
	for i, g := range gs {
		out[i] = groupDTO(g)
	}
	return out
}

// TaskResult is the wire form of one mining sub-problem's outcome. The
// GeoJSON payload carries the same groups as a client-renderable
// choropleth layer; it is omitted when no group has a geo-condition
// (framework mode).
type TaskResult struct {
	Task      string  `json:"task"`
	Objective float64 `json:"objective"`
	Coverage  float64 `json:"coverage"`
	// RelaxedCoverage is the α actually enforced after automatic
	// relaxation (equal to the requested α when none was needed).
	RelaxedCoverage float64  `json:"relaxed_coverage"`
	Feasible        bool     `json:"feasible"`
	Evals           int      `json:"evals"`
	Groups          []Group  `json:"groups"`
	GeoJSON         *GeoJSON `json:"geojson,omitempty"`
}

func taskResultDTO(tr maprat.TaskResult) TaskResult {
	groups := groupDTOs(tr.Groups)
	return TaskResult{
		Task:            tr.Task.String(),
		Objective:       tr.Objective,
		Coverage:        tr.Coverage,
		RelaxedCoverage: tr.RelaxedCoverage,
		Feasible:        tr.Feasible,
		Evals:           tr.Evals,
		Groups:          groups,
		GeoJSON:         groupsGeoJSON(groups),
	}
}

// ExplainResponse is the /api/v1/explain payload: everything Figure 2
// renders, per mining sub-problem.
type ExplainResponse struct {
	Query       string       `json:"query"`
	ItemIDs     []int        `json:"item_ids"`
	NumRatings  int          `json:"num_ratings"`
	OverallMean float64      `json:"overall_mean"`
	OverallStd  float64      `json:"overall_std"`
	Tasks       []TaskResult `json:"tasks"`
	FromCache   bool         `json:"from_cache"`
	ElapsedMS   float64      `json:"elapsed_ms"`
	// Degraded lists the shards missing from this result. Omitted (and
	// never present from a single-node server) for complete results; see
	// the README's degradation contract.
	Degraded []string `json:"degraded,omitempty"`
}

func explainDTO(ex *maprat.Explanation) *ExplainResponse {
	resp := &ExplainResponse{
		Query:       ex.Query.String(),
		ItemIDs:     ex.ItemIDs,
		NumRatings:  ex.NumRatings,
		OverallMean: ex.Overall.Mean(),
		OverallStd:  ex.Overall.Std(),
		FromCache:   ex.FromCache,
		ElapsedMS:   float64(ex.Elapsed.Microseconds()) / 1000,
		Degraded:    ex.Degraded,
	}
	for _, tr := range ex.Results {
		resp.Tasks = append(resp.Tasks, taskResultDTO(tr))
	}
	return resp
}

// CityStat is one row of the state→city drill-down.
type CityStat struct {
	City  string  `json:"city"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Count int     `json:"count"`
}

// TimeBucket is one point of a group's rating-evolution series.
type TimeBucket struct {
	// Start is inclusive, End exclusive (RFC 3339, UTC).
	Start string  `json:"start"`
	End   string  `json:"end"`
	Label string  `json:"label"`
	Mean  float64 `json:"mean"`
	Count int     `json:"count"`
}

// Refinement is one drill-deeper child of a group, with its behavioural
// deviation from the parent.
type Refinement struct {
	Group Group `json:"group"`
	// Added names the attribute the refinement constrains beyond the
	// parent.
	Added string `json:"added"`
	// Delta is the refinement's mean minus the parent's mean.
	Delta float64 `json:"delta"`
}

func stateOf(k cube.Key) string {
	if k.Has(cube.State) {
		return cube.StateCode(k[cube.State])
	}
	return ""
}

func refinementDTOs(refs []maprat.Refinement) []Refinement {
	out := make([]Refinement, len(refs))
	for i, r := range refs {
		out[i] = Refinement{Group: groupDTO(r.Group), Added: r.Added, Delta: r.Delta}
	}
	return out
}

// GroupResponse is the /api/v1/group payload: the full Figure-3
// exploration of one group — statistics, related groups, refinements.
type GroupResponse struct {
	Query string `json:"query"`
	Group Group  `json:"group"`
	// Histogram[i] counts ratings with score i+1.
	Histogram   []int        `json:"histogram"`
	Cities      []CityStat   `json:"cities,omitempty"`
	Timeline    []TimeBucket `json:"timeline"`
	Related     []Group      `json:"related,omitempty"`
	Refinements []Refinement `json:"refinements,omitempty"`
	// Degraded lists the shards missing from this result (distributed
	// serving only).
	Degraded []string `json:"degraded,omitempty"`
}

func groupResponseDTO(q string, ge *maprat.GroupExploration) *GroupResponse {
	st := ge.Stats
	resp := &GroupResponse{
		Query: q,
		Group: Group{
			Key:    st.Key.Param(),
			Phrase: st.Phrase,
			Icons:  viz.Icons(st.Key),
			State:  stateOf(st.Key),
			Mean:   st.Agg.Mean(),
			Std:    st.Agg.Std(),
			Count:  st.Agg.Count,
			Share:  st.Share,
		},
		Histogram:   st.Histogram[model.MinScore:],
		Related:     groupDTOs(ge.Related),
		Refinements: refinementDTOs(ge.Refinements),
		Degraded:    ge.Degraded,
	}
	for _, c := range st.Cities {
		resp.Cities = append(resp.Cities, CityStat{
			City: c.City, Mean: c.Agg.Mean(), Std: c.Agg.Std(), Count: c.Agg.Count,
		})
	}
	for _, b := range st.Timeline {
		resp.Timeline = append(resp.Timeline, TimeBucket{
			Start: b.Start.UTC().Format(time.RFC3339),
			End:   b.End.UTC().Format(time.RFC3339),
			Label: b.Label(),
			Mean:  b.Agg.Mean(),
			Count: b.Agg.Count,
		})
	}
	return resp
}

// RefinementsResponse is the /api/v1/refine payload.
type RefinementsResponse struct {
	Query       string       `json:"query"`
	Key         string       `json:"key"`
	Refinements []Refinement `json:"refinements"`
	// Degraded lists the shards missing from this result (distributed
	// serving only).
	Degraded []string `json:"degraded,omitempty"`
}

// DrillResponse is the /api/v1/drill payload: the best city-anchored
// sub-groups mined inside one state-anchored parent group.
type DrillResponse struct {
	Query  string     `json:"query"`
	Parent string     `json:"parent"`
	Result TaskResult `json:"result"`
	// Degraded lists the shards missing from this result (distributed
	// serving only).
	Degraded []string `json:"degraded,omitempty"`
}

// EvolutionPoint is one time-slider position. Exactly one of Explain and
// Error is set: windows that could not be mined (e.g. no ratings) render
// as gaps, not failures of the whole sweep.
type EvolutionPoint struct {
	Year    int              `json:"year"`
	From    string           `json:"from"`
	To      string           `json:"to"`
	Explain *ExplainResponse `json:"explain,omitempty"`
	Error   *ErrorBody       `json:"error,omitempty"`
}

// EvolutionResponse is the /api/v1/evolution payload: the §3.1 time
// slider as one explanation per yearly window.
type EvolutionResponse struct {
	Query  string           `json:"query"`
	Points []EvolutionPoint `json:"points"`
	// Degraded is the union of the per-point degraded shard lists
	// (distributed serving only), sorted and deduplicated.
	Degraded []string `json:"degraded,omitempty"`
}

// StateOverview is one row of the browse-mode choropleth.
type StateOverview struct {
	State string  `json:"state"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	Count int     `json:"count"`
}

// BrowseResponse is the /api/v1/browse payload: every state's whole-log
// aggregate plus the client-renderable choropleth layer.
type BrowseResponse struct {
	States  []StateOverview `json:"states"`
	GeoJSON *GeoJSON        `json:"geojson"`
}

// BatchRequest is the /api/v1/batch input: up to MaxBatch explain
// requests fanned out concurrently through the engine's singleflight +
// plan tiers.
type BatchRequest struct {
	Requests []Params `json:"requests"`
}

// BatchResult is one element of the batch response, index-aligned with
// the request list. Exactly one of Explain and Error is set; a failure of
// one element never fails the batch.
type BatchResult struct {
	Explain *ExplainResponse `json:"explain,omitempty"`
	Error   *ErrorBody       `json:"error,omitempty"`
}

// BatchResponse is the /api/v1/batch payload.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

func yearWindowStrings(w maprat.TimeWindow) (year int, from, to string) {
	f := time.Unix(w.From, 0).UTC()
	t := time.Unix(w.To, 0).UTC()
	return f.Year(), f.Format(time.RFC3339), t.Format(time.RFC3339)
}

func evolutionDTO(q string, points []maprat.EvolutionPoint) *EvolutionResponse {
	resp := &EvolutionResponse{Query: q}
	missing := map[string]bool{}
	for _, p := range points {
		year, from, to := yearWindowStrings(p.Window)
		ep := EvolutionPoint{Year: year, From: from, To: to}
		if p.Err != nil {
			ep.Error = errorBodyFor(p.Err)
		} else {
			ep.Explain = explainDTO(p.Explanation)
			for _, m := range p.Explanation.Degraded {
				missing[m] = true
			}
		}
		resp.Points = append(resp.Points, ep)
	}
	for m := range missing {
		resp.Degraded = append(resp.Degraded, m)
	}
	sort.Strings(resp.Degraded)
	return resp
}
