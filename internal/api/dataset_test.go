package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

// The multi-dataset tests mount two small engines over different seeds,
// so the two datasets have different fingerprints and different mining
// results.
var (
	multiOnce sync.Once
	multiSrv  *httptest.Server
	multiReg  *maprat.Registry
)

func multiServer(t *testing.T) *httptest.Server {
	t.Helper()
	multiOnce.Do(func() {
		multiReg = maprat.NewRegistry()
		for i, name := range []string{"alpha", "beta"} {
			cfg := maprat.SmallGenConfig()
			cfg.Users = 300
			cfg.Movies = 120
			cfg.Ratings = 6000
			cfg.Seed = int64(i + 1)
			ds, err := maprat.Generate(cfg)
			if err != nil {
				panic(err)
			}
			eng, err := maprat.Open(ds, nil)
			if err != nil {
				panic(err)
			}
			if err := multiReg.Add(name, eng, maprat.DatasetInfo{Source: "generated"}); err != nil {
				panic(err)
			}
		}
		multiSrv = httptest.NewServer(NewMulti(multiReg, Config{}))
	})
	return multiSrv
}

func multiGet(t *testing.T, path string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	ts := multiServer(t)
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestDatasetQueryRouting(t *testing.T) {
	// The same query against the two mounts must answer different data;
	// the default (no dataset param) must equal the first mount.
	resp1, bodyDefault := multiGet(t, "/api/v1/explain?q=genre:Drama", nil)
	respA, bodyAlpha := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=alpha", nil)
	respB, bodyBeta := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=beta", nil)
	for _, resp := range []*http.Response{resp1, respA, respB} {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if string(scrub(t, bodyDefault)) != string(scrub(t, bodyAlpha)) {
		t.Error("default routing differs from the first mount")
	}
	if string(scrub(t, bodyAlpha)) == string(scrub(t, bodyBeta)) {
		t.Error("alpha and beta served identical results — routing is not selecting datasets")
	}
}

func TestDatasetHeaderRouting(t *testing.T) {
	_, viaQuery := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=beta", nil)
	_, viaHeader := multiGet(t, "/api/v1/explain?q=genre:Drama", map[string]string{"X-Maprat-Dataset": "beta"})
	if string(scrub(t, viaQuery)) != string(scrub(t, viaHeader)) {
		t.Error("header routing differs from query routing for the same dataset")
	}
	// The query parameter wins over the header.
	_, both := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=alpha", map[string]string{"X-Maprat-Dataset": "beta"})
	_, alpha := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=alpha", nil)
	if string(scrub(t, both)) != string(scrub(t, alpha)) {
		t.Error("query parameter did not take precedence over the header")
	}
}

func TestDatasetUnknown404(t *testing.T) {
	for _, tc := range []struct {
		name string
		path string
		hdr  map[string]string
	}{
		{"query", "/api/v1/explain?q=genre:Drama&dataset=nope", nil},
		{"header", "/api/v1/explain?q=genre:Drama", map[string]string{"X-Maprat-Dataset": "nope"}},
		{"browse", "/api/v1/browse?dataset=nope", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := multiGet(t, tc.path, tc.hdr)
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("status %d, want 404 (body %s)", resp.StatusCode, body)
			}
			var env ErrorEnvelope
			if err := json.Unmarshal([]byte(body), &env); err != nil {
				t.Fatalf("not an error envelope: %s", body)
			}
			if env.Error.Code != CodeDatasetNotFound {
				t.Errorf("code %q, want %q", env.Error.Code, CodeDatasetNotFound)
			}
			if !strings.Contains(env.Error.Message, "alpha") || !strings.Contains(env.Error.Message, "beta") {
				t.Errorf("message should list the mounted datasets: %s", env.Error.Message)
			}
		})
	}
}

func TestDatasetETags(t *testing.T) {
	respA, _ := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=alpha", nil)
	respB, _ := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=beta", nil)
	tagA, tagB := respA.Header.Get("ETag"), respB.Header.Get("ETag")
	if tagA == "" || tagB == "" {
		t.Fatalf("missing ETags: alpha %q, beta %q", tagA, tagB)
	}
	if tagA == tagB {
		t.Error("the two datasets share an ETag — fingerprints are not in the tag")
	}
	// Header-selected dataset must yield the header-dataset's tag even
	// though the query string is identical.
	respH, _ := multiGet(t, "/api/v1/explain?q=genre:Drama", map[string]string{"X-Maprat-Dataset": "beta"})
	respDef, _ := multiGet(t, "/api/v1/explain?q=genre:Drama", nil)
	if respH.Header.Get("ETag") == respDef.Header.Get("ETag") {
		t.Error("header-routed request got the default dataset's ETag")
	}
	// Conditional request round-trip per dataset.
	resp304, _ := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=beta", map[string]string{"If-None-Match": tagB})
	if resp304.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match with beta's tag answered %d, want 304", resp304.StatusCode)
	}
	respMiss, _ := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=alpha", map[string]string{"If-None-Match": tagB})
	if respMiss.StatusCode != http.StatusOK {
		t.Errorf("beta's tag against alpha answered %d, want 200", respMiss.StatusCode)
	}
	// An unknown dataset must 404 out of the conditional path, never 304.
	respBad, _ := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=nope", map[string]string{"If-None-Match": tagB})
	if respBad.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset with If-None-Match answered %d, want 404", respBad.StatusCode)
	}
}

func TestDatasetPostBody(t *testing.T) {
	ts := multiServer(t)
	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/api/v1/explain", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	code, viaBody := post(`{"q":"genre:Drama","dataset":"beta"}`)
	if code != http.StatusOK {
		t.Fatalf("POST with dataset field: status %d (%s)", code, viaBody)
	}
	_, viaQuery := multiGet(t, "/api/v1/explain?q=genre:Drama&dataset=beta", nil)
	if string(scrub(t, viaBody)) != string(scrub(t, viaQuery)) {
		t.Error("POST-body dataset selection differs from query selection")
	}
	code, body := post(`{"q":"genre:Drama","dataset":"nope"}`)
	if code != http.StatusNotFound {
		t.Errorf("POST with unknown dataset: status %d (%s)", code, body)
	}
}

func TestDatasetBatchRouting(t *testing.T) {
	ts := multiServer(t)
	body := `{"requests":[
		{"q":"genre:Drama","dataset":"alpha"},
		{"q":"genre:Drama","dataset":"beta"},
		{"q":"genre:Drama","dataset":"nope"}
	]}`
	resp, err := http.Post(ts.URL+"/api/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Error != nil || out.Results[1].Error != nil {
		t.Errorf("mounted-dataset elements failed: %+v %+v", out.Results[0].Error, out.Results[1].Error)
	}
	if out.Results[2].Error == nil || out.Results[2].Error.Code != CodeDatasetNotFound {
		t.Errorf("unknown-dataset element: %+v, want %s", out.Results[2].Error, CodeDatasetNotFound)
	}
	a, _ := json.Marshal(out.Results[0].Explain)
	b, _ := json.Marshal(out.Results[1].Explain)
	if string(scrub(t, string(a))) == string(scrub(t, string(b))) {
		t.Error("batch elements for the two datasets answered identical results")
	}
}

func TestDatasetJobSubmit(t *testing.T) {
	ts := multiServer(t)
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"op":"explain","q":"genre:Drama","dataset":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("job submit with unknown dataset: status %d (%s)", resp.StatusCode, b)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(b, &env); err != nil || env.Error.Code != CodeDatasetNotFound {
		t.Errorf("envelope %s, want code %s", b, CodeDatasetNotFound)
	}
}
