package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/jobs"
)

// Config tunes the v1 surface.
type Config struct {
	// RequestTimeout bounds each mining request; zero means
	// DefaultRequestTimeout, negative disables the deadline.
	RequestTimeout time.Duration
	// MaxBatch caps the requests accepted by /api/v1/batch (zero means
	// DefaultMaxBatch).
	MaxBatch int
	// BatchWorkers bounds the concurrency a batch fans out with (zero
	// means DefaultBatchWorkers). Identical requests inside one batch
	// still mine once: the engine's singleflight layer dedups them.
	BatchWorkers int
	// Logger receives the access log; nil disables it.
	Logger *log.Logger
	// ErrorLog receives panic reports; nil means log.Default(), so
	// crashes are recorded even when the access log is off.
	ErrorLog *log.Logger
	// Jobs tunes the async job subsystem (queue depth, worker pool,
	// result TTL, job timeout); the zero value uses the jobs package
	// defaults.
	Jobs jobs.Config
	// EnableGzip lets clients negotiate gzip-compressed JSON responses
	// via Accept-Encoding on every /api/v1 endpoint except the SSE
	// stream (which must never sit behind a buffering compressor).
	EnableGzip bool
}

// The v1 defaults.
const (
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxBatch       = 16
	DefaultBatchWorkers   = 4
)

// Handler serves the versioned /api/v1 surface over an opened engine:
//
//	GET|POST /api/v1/explain    — the full SM/DM mining pipeline
//	GET|POST /api/v1/group      — per-group exploration (stats, related, refinements)
//	GET|POST /api/v1/refine     — drill-deeper refinements only
//	GET|POST /api/v1/drill      — city-anchored mining inside a state group
//	GET|POST /api/v1/evolution  — the yearly time slider
//	GET|POST /api/v1/browse     — whole-log per-state choropleth
//	POST     /api/v1/batch      — up to MaxBatch explains, fanned out concurrently
//	POST     /api/v1/ratings    — append a batch of new ratings (202 + epoch)
//
// Every endpoint answers failures with the ErrorEnvelope. Handlers encode
// into a buffer before touching the response headers, so an encode
// failure still produces a clean 500.
type Handler struct {
	reg     *maprat.Registry
	cfg     Config
	mux     *http.ServeMux
	metrics map[string]*endpointMetrics
	reqID   atomic.Uint64
	jobs    *jobs.Manager
}

// New mounts the v1 endpoints over a single engine — the compatibility
// constructor for servers that predate multi-dataset serving. The engine
// becomes the sole (default) mount, so requests that name no dataset
// behave exactly as before.
func New(eng *maprat.Engine, cfg Config) *Handler {
	return NewMulti(maprat.NewSingleRegistry("default", eng, maprat.DatasetInfo{}), cfg)
}

// NewMulti mounts the v1 endpoints over a registry of datasets. Every
// mining endpoint selects its dataset per request — an explicit
// "dataset" parameter (query or JSON body), the X-Maprat-Dataset header,
// or the registry's default mount — and an unknown name answers the
// dataset_not_found envelope with 404.
func NewMulti(reg *maprat.Registry, cfg Config) *Handler {
	if reg == nil || reg.Len() == 0 {
		panic("api: NewMulti needs a registry with at least one mount")
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = DefaultBatchWorkers
	}
	h := &Handler{reg: reg, cfg: cfg, mux: http.NewServeMux(), metrics: map[string]*endpointMetrics{}}
	h.jobs = jobs.NewManager(cfg.Jobs)
	h.mux.Handle("/api/v1/explain", h.wrap("explain", h.handleExplain))
	h.mux.Handle("/api/v1/group", h.wrap("group", h.handleGroup))
	h.mux.Handle("/api/v1/refine", h.wrap("refine", h.handleRefine))
	h.mux.Handle("/api/v1/drill", h.wrap("drill", h.handleDrill))
	h.mux.Handle("/api/v1/evolution", h.wrap("evolution", h.handleEvolution))
	h.mux.Handle("/api/v1/browse", h.wrap("browse", h.handleBrowse))
	h.mux.Handle("/api/v1/batch", h.wrap("batch", h.handleBatch))
	// The live-ingestion write path. Deliberately absent from
	// etagEndpoints: a write is never cacheable.
	h.mux.Handle("/api/v1/ratings", h.wrap("ratings", h.handleAppend))
	// The async job surface. The patterns carry no method so every
	// unsupported method still answers the structured 405 envelope
	// (ServeMux's own 405 is plain text).
	h.mux.Handle("/api/v1/jobs", h.wrap("jobs_submit", h.handleJobs))
	h.mux.Handle("/api/v1/jobs/{id}", h.wrap("jobs_get", h.handleJob))
	h.mux.Handle("/api/v1/jobs/{id}/events", h.wrap("jobs_events", h.handleJobEvents))
	// The worker-side scatter-gather surface the coordinator fans out to.
	h.mux.Handle("/api/v1/shard/info", h.wrap("shard_info", h.handleShardInfo))
	h.mux.Handle("/api/v1/shard/gather", h.wrap("shard_gather", h.handleShardGather))
	// Routing failures reuse the envelope shape but carry the status the
	// condition deserves: 404 for a path that doesn't exist, 405 (with
	// Allow) for a method the endpoint doesn't support — see notFound and
	// methodNotAllowed.
	h.mux.Handle("/api/v1/", h.wrap("unknown", func(w http.ResponseWriter, r *http.Request) {
		notFound(w, "unknown endpoint "+r.URL.Path)
	}))
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// Close drains the job subsystem: submits stop being admitted, queued
// jobs are canceled, and running jobs get until ctx ends to finish.
// The server calls it after the HTTP listener has shut down.
func (h *Handler) Close(ctx context.Context) error { return h.jobs.Close(ctx) }

// JobStats exposes the job subsystem's gauges and counters for /statsz.
func (h *Handler) JobStats() jobs.Stats { return h.jobs.Stats() }

// Registry exposes the mounted datasets (for /statsz and tests).
func (h *Handler) Registry() *maprat.Registry { return h.reg }

// datasetName resolves which dataset a request addresses, in precedence
// order: an explicit value decoded from the body/params, the ?dataset=
// query parameter, then the X-Maprat-Dataset header. "" means "the
// default mount".
func datasetName(r *http.Request, explicit string) string {
	if explicit != "" {
		return explicit
	}
	if q := r.URL.Query().Get("dataset"); q != "" {
		return q
	}
	return r.Header.Get("X-Maprat-Dataset")
}

// lookupEngine resolves a dataset name against the registry. The miner
// may be a local engine or a coordinator; handlers that need store
// access type-assert (see handleShardGather).
func (h *Handler) lookupEngine(name string) (maprat.Miner, bool) {
	m, ok := h.reg.Lookup(name)
	if !ok {
		return nil, false
	}
	return m.Engine, true
}

// resolveEngine picks the miner a request mines against, answering the
// dataset_not_found envelope itself when the named dataset is not
// mounted.
func (h *Handler) resolveEngine(w http.ResponseWriter, r *http.Request, explicit string) (maprat.Miner, bool) {
	name := datasetName(r, explicit)
	eng, ok := h.lookupEngine(name)
	if !ok {
		writeEnvelope(w, CodeDatasetNotFound, datasetNotFoundMsg(name, h.reg.Names()))
		return nil, false
	}
	return eng, true
}

func datasetNotFoundMsg(name string, mounted []string) string {
	return fmt.Sprintf("no dataset %q (mounted: %s)", name, strings.Join(mounted, ", "))
}

// requestContext derives the mining context for one request.
func (h *Handler) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if h.cfg.RequestTimeout < 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), h.cfg.RequestTimeout)
}

// WriteJSON encodes v into a buffer first, so a marshalling failure can
// still answer a clean 500 (the error envelope) instead of corrupting a
// half-written 200. Shared with internal/server's JSON handlers.
func WriteJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		writeEnvelope(w, CodeInternal, "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// decodeFail answers a decode/validation failure: 405 with Allow for an
// unsupported method, 413 for an oversized body, 400 for everything
// else.
func decodeFail(w http.ResponseWriter, err error) {
	var me *methodError
	if errors.As(err, &me) {
		methodNotAllowed(w, me.allow, me.msg)
		return
	}
	var tle *tooLargeError
	if errors.As(err, &tle) {
		writeEnvelopeStatus(w, http.StatusRequestEntityTooLarge, CodeBadRequest, tle.msg)
		return
	}
	writeEnvelope(w, CodeBadRequest, err.Error())
}

func (h *Handler) handleExplain(w http.ResponseWriter, r *http.Request) {
	p, err := DecodeParams(r)
	if err != nil {
		decodeFail(w, err)
		return
	}
	req, err := p.ExplainRequest()
	if err != nil {
		decodeFail(w, err)
		return
	}
	eng, ok := h.resolveEngine(w, r, p.Dataset)
	if !ok {
		return
	}
	ctx, cancel := h.requestContext(r)
	defer cancel()
	ex, err := eng.ExplainContext(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	markDegraded(w, ex.Degraded)
	WriteJSON(w, explainDTO(ex))
}

func (h *Handler) handleGroup(w http.ResponseWriter, r *http.Request) {
	p, req, key, ok := h.decodeGroupish(w, r)
	if !ok {
		return
	}
	buckets, err := p.TimelineBuckets()
	if err != nil {
		decodeFail(w, err)
		return
	}
	limit, err := p.RefineLimit()
	if err != nil {
		decodeFail(w, err)
		return
	}
	eng, ok := h.resolveEngine(w, r, p.Dataset)
	if !ok {
		return
	}
	ctx, cancel := h.requestContext(r)
	defer cancel()
	ge, err := eng.ExploreFullContext(ctx, req.Query, key, buckets, limit)
	if err != nil {
		writeError(w, err)
		return
	}
	markDegraded(w, ge.Degraded)
	WriteJSON(w, groupResponseDTO(req.Query.String(), ge))
}

func (h *Handler) handleRefine(w http.ResponseWriter, r *http.Request) {
	p, req, key, ok := h.decodeGroupish(w, r)
	if !ok {
		return
	}
	limit, err := p.RefineLimit()
	if err != nil {
		decodeFail(w, err)
		return
	}
	eng, ok := h.resolveEngine(w, r, p.Dataset)
	if !ok {
		return
	}
	ctx, cancel := h.requestContext(r)
	defer cancel()
	refs, missing, err := refineWithDegraded(ctx, eng, req.Query, key, limit)
	if err != nil {
		writeError(w, err)
		return
	}
	markDegraded(w, missing)
	WriteJSON(w, &RefinementsResponse{
		Query:       req.Query.String(),
		Key:         key.Param(),
		Refinements: refinementDTOs(refs),
		Degraded:    missing,
	})
}

func (h *Handler) handleDrill(w http.ResponseWriter, r *http.Request) {
	p, req, key, ok := h.decodeGroupish(w, r)
	if !ok {
		return
	}
	task, err := p.DrillTask()
	if err != nil {
		decodeFail(w, err)
		return
	}
	eng, ok := h.resolveEngine(w, r, p.Dataset)
	if !ok {
		return
	}
	ctx, cancel := h.requestContext(r)
	defer cancel()
	tr, err := eng.DrillMineContext(ctx, req.Query, key, task, req.Settings)
	if err != nil {
		writeError(w, err)
		return
	}
	markDegraded(w, tr.Degraded)
	WriteJSON(w, &DrillResponse{
		Query:    req.Query.String(),
		Parent:   key.Param(),
		Result:   taskResultDTO(*tr),
		Degraded: tr.Degraded,
	})
}

// decodeGroupish decodes the shared (params, explain request, group key)
// triple of the per-group endpoints, answering the error itself on
// failure.
func (h *Handler) decodeGroupish(w http.ResponseWriter, r *http.Request) (Params, maprat.ExplainRequest, maprat.Key, bool) {
	p, err := DecodeParams(r)
	if err != nil {
		decodeFail(w, err)
		return p, maprat.ExplainRequest{}, maprat.Key{}, false
	}
	req, err := p.ExplainRequest()
	if err != nil {
		decodeFail(w, err)
		return p, req, maprat.Key{}, false
	}
	key, err := p.GroupKey()
	if err != nil {
		decodeFail(w, err)
		return p, req, key, false
	}
	return p, req, key, true
}

func (h *Handler) handleEvolution(w http.ResponseWriter, r *http.Request) {
	p, err := DecodeParams(r)
	if err != nil {
		decodeFail(w, err)
		return
	}
	req, err := p.ExplainRequest()
	if err != nil {
		decodeFail(w, err)
		return
	}
	eng, ok := h.resolveEngine(w, r, p.Dataset)
	if !ok {
		return
	}
	ctx, cancel := h.requestContext(r)
	defer cancel()
	points, err := eng.EvolutionContext(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := evolutionDTO(req.Query.String(), points)
	markDegraded(w, resp.Degraded)
	WriteJSON(w, resp)
}

func (h *Handler) handleBrowse(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead, http.MethodPost:
	default:
		methodNotAllowed(w, "GET, POST", "method "+r.Method+" not allowed (use GET or POST)")
		return
	}
	eng, ok := h.resolveEngine(w, r, "")
	if !ok {
		return
	}
	epoch, err := uint64Param(r.URL.Query().Get("epoch"), "epoch")
	if err != nil {
		decodeFail(w, err)
		return
	}
	var states []maprat.StateOverview
	if epoch != nil && *epoch != 0 {
		// Epoch pinning is a local-engine feature; a coordinator mount
		// serves only the latest merged view.
		eb, ok := eng.(interface {
			BrowseStatesAt(uint64) ([]maprat.StateOverview, error)
		})
		if !ok {
			writeEnvelope(w, CodeBadRequest, "this server does not support epoch-pinned browse")
			return
		}
		if states, err = eb.BrowseStatesAt(*epoch); err != nil {
			writeError(w, err)
			return
		}
	} else {
		states = eng.BrowseStates()
	}
	if states == nil {
		writeEnvelope(w, CodeInternal, "browse mode needs the precomputed global cube")
		return
	}
	resp := &BrowseResponse{GeoJSON: browseGeoJSON(states)}
	for _, st := range states {
		resp.States = append(resp.States, StateOverview{
			State: st.State, Mean: st.Agg.Mean(), Std: st.Agg.Std(), Count: st.Agg.Count,
		})
	}
	WriteJSON(w, resp)
}

// handleBatch fans up to MaxBatch explain requests out through
// ExplainContext with bounded concurrency. The engine's singleflight +
// plan tiers make duplicate elements cheap: M identical explains mine
// exactly once. Results are index-aligned with the request list and each
// element fails independently.
func (h *Handler) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost, "batch requires POST")
		return
	}
	var batch BatchRequest
	if err := decodeBody(r, &batch); err != nil {
		decodeFail(w, err)
		return
	}
	if len(batch.Requests) == 0 {
		decodeFail(w, badRequestf("empty batch"))
		return
	}
	if len(batch.Requests) > h.cfg.MaxBatch {
		decodeFail(w, badRequestf("batch of %d exceeds the limit of %d", len(batch.Requests), h.cfg.MaxBatch))
		return
	}
	ctx, cancel := h.requestContext(r)
	defer cancel()

	results := make([]BatchResult, len(batch.Requests))
	sem := make(chan struct{}, h.cfg.BatchWorkers)
	var wg sync.WaitGroup
	for i, p := range batch.Requests {
		req, err := p.ExplainRequest()
		if err != nil {
			results[i] = BatchResult{Error: &ErrorBody{Code: CodeBadRequest, Message: err.Error()}}
			continue
		}
		// Each element picks its own dataset; the request-level query /
		// header act as the default for elements that name none.
		eng, ok := h.lookupEngine(datasetName(r, p.Dataset))
		if !ok {
			results[i] = BatchResult{Error: &ErrorBody{
				Code:    CodeDatasetNotFound,
				Message: datasetNotFoundMsg(datasetName(r, p.Dataset), h.reg.Names()),
			}}
			continue
		}
		wg.Add(1)
		go func(i int, req maprat.ExplainRequest, eng maprat.Miner) {
			defer wg.Done()
			// The recovery middleware only guards the handler's own
			// goroutine; an unrecovered panic here would kill the whole
			// process, so each worker contains its own.
			defer func() {
				if p := recover(); p != nil {
					h.errorf("batch element %d panic: %v\n%s", i, p, debug.Stack())
					results[i] = BatchResult{Error: &ErrorBody{Code: CodeInternal, Message: "internal error"}}
				}
			}()
			sem <- struct{}{}
			defer func() { <-sem }()
			ex, err := eng.ExplainContext(ctx, req)
			if err != nil {
				results[i] = BatchResult{Error: errorBodyFor(err)}
				return
			}
			results[i] = BatchResult{Explain: explainDTO(ex)}
		}(i, req, eng)
	}
	wg.Wait()
	WriteJSON(w, &BatchResponse{Results: results})
}
