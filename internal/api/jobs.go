package api

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro"
	"repro/internal/jobs"
)

// JobSubmitRequest is the POST /api/v1/jobs body: one of the five mining
// pipelines named by Op, plus the exact knob set the corresponding
// synchronous endpoint accepts (the shared Params decoder).
type JobSubmitRequest struct {
	// Op selects the pipeline: explain, group, refine, drill, evolution.
	Op string `json:"op"`
	Params
}

// JobProgress is the wire form of a job's latest solver progress.
type JobProgress = jobs.Progress

// JobStatus is the job resource every /api/v1/jobs endpoint returns:
// identity, lifecycle state, timestamps, latest progress, and — once the
// job is done — the result payload, byte-identical to what the
// synchronous endpoint would have answered.
type JobStatus struct {
	ID    string `json:"id"`
	Op    string `json:"op"`
	State string `json:"state"`
	// Created/Started/Finished are RFC 3339 with sub-second precision;
	// Started and Finished are absent until the job reaches them.
	Created  string       `json:"created"`
	Started  string       `json:"started,omitempty"`
	Finished string       `json:"finished,omitempty"`
	Progress *JobProgress `json:"progress,omitempty"`
	// Error carries the failure for failed/canceled jobs, in the same
	// code vocabulary as the synchronous error envelope.
	Error *ErrorBody `json:"error,omitempty"`
	// Result is the pipeline's response document (ExplainResponse,
	// GroupResponse, ...), present only when State is "done".
	Result json.RawMessage `json:"result,omitempty"`
}

// jobStatusDTO converts a jobs snapshot to the wire shape. withResult
// lets the SSE stream omit the (potentially large) result document —
// stream consumers fetch it once via GET when the terminal event lands.
func (h *Handler) jobStatusDTO(s jobs.Snapshot, withResult bool) *JobStatus {
	st := &JobStatus{
		ID:      s.ID,
		Op:      s.Kind,
		State:   string(s.State),
		Created: s.Created.UTC().Format(time.RFC3339Nano),
	}
	if !s.Started.IsZero() {
		st.Started = s.Started.UTC().Format(time.RFC3339Nano)
	}
	if !s.Finished.IsZero() {
		st.Finished = s.Finished.UTC().Format(time.RFC3339Nano)
	}
	if s.HasProgress {
		p := s.Progress
		st.Progress = &p
	}
	if s.Err != nil {
		st.Error = errorBodyFor(s.Err)
	}
	if withResult && s.State == jobs.Done && s.Result != nil {
		raw, err := json.Marshal(s.Result)
		if err != nil {
			st.Error = &ErrorBody{Code: CodeInternal, Message: "encoding result: " + err.Error()}
		} else {
			st.Result = raw
		}
	}
	return st
}

// jobFn validates a submit request eagerly — bad parameters must fail
// the POST with 400, not surface minutes later as a failed job — and
// returns the closure the worker pool executes against eng (the dataset
// resolved at submit time, so a job's dataset cannot drift while it sits
// in the queue). The progress callback is threaded into
// Settings.Progress, so restart completions inside core.SolveRHE surface
// as job progress events.
func (h *Handler) jobFn(eng maprat.Miner, req JobSubmitRequest) (jobs.Fn, error) {
	p := req.Params
	wire := func(er *maprat.ExplainRequest, report func(jobs.Progress)) {
		er.Settings.Progress = func(done, total int) {
			report(jobs.Progress{Done: done, Total: total})
		}
	}
	switch req.Op {
	case "explain":
		er, err := p.ExplainRequest()
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context, report func(jobs.Progress)) (any, error) {
			wire(&er, report)
			ex, err := eng.ExplainContext(ctx, er)
			if err != nil {
				return nil, err
			}
			return explainDTO(ex), nil
		}, nil
	case "group":
		er, err := p.ExplainRequest()
		if err != nil {
			return nil, err
		}
		key, err := p.GroupKey()
		if err != nil {
			return nil, err
		}
		buckets, err := p.TimelineBuckets()
		if err != nil {
			return nil, err
		}
		limit, err := p.RefineLimit()
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context, report func(jobs.Progress)) (any, error) {
			ge, err := eng.ExploreFullContext(ctx, er.Query, key, buckets, limit)
			if err != nil {
				return nil, err
			}
			return groupResponseDTO(er.Query.String(), ge), nil
		}, nil
	case "refine":
		er, err := p.ExplainRequest()
		if err != nil {
			return nil, err
		}
		key, err := p.GroupKey()
		if err != nil {
			return nil, err
		}
		limit, err := p.RefineLimit()
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context, report func(jobs.Progress)) (any, error) {
			refs, missing, err := refineWithDegraded(ctx, eng, er.Query, key, limit)
			if err != nil {
				return nil, err
			}
			return &RefinementsResponse{
				Query:       er.Query.String(),
				Key:         key.Param(),
				Refinements: refinementDTOs(refs),
				Degraded:    missing,
			}, nil
		}, nil
	case "drill":
		er, err := p.ExplainRequest()
		if err != nil {
			return nil, err
		}
		key, err := p.GroupKey()
		if err != nil {
			return nil, err
		}
		task, err := p.DrillTask()
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context, report func(jobs.Progress)) (any, error) {
			wire(&er, report)
			tr, err := eng.DrillMineContext(ctx, er.Query, key, task, er.Settings)
			if err != nil {
				return nil, err
			}
			return &DrillResponse{
				Query:    er.Query.String(),
				Parent:   key.Param(),
				Result:   taskResultDTO(*tr),
				Degraded: tr.Degraded,
			}, nil
		}, nil
	case "evolution":
		er, err := p.ExplainRequest()
		if err != nil {
			return nil, err
		}
		return func(ctx context.Context, report func(jobs.Progress)) (any, error) {
			wire(&er, report)
			points, err := eng.EvolutionContext(ctx, er)
			if err != nil {
				return nil, err
			}
			return evolutionDTO(er.Query.String(), points), nil
		}, nil
	default:
		return nil, badRequestf("bad op %q (want explain, group, refine, drill or evolution)", req.Op)
	}
}

// handleJobs is the collection endpoint: POST submits a job, everything
// else answers 405.
func (h *Handler) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost, "job submission requires POST")
		return
	}
	var req JobSubmitRequest
	if err := decodeBody(r, &req); err != nil {
		decodeFail(w, err)
		return
	}
	eng, ok := h.resolveEngine(w, r, req.Params.Dataset)
	if !ok {
		return
	}
	fn, err := h.jobFn(eng, req)
	if err != nil {
		decodeFail(w, err)
		return
	}
	j, err := h.jobs.Submit(req.Op, fn)
	if err != nil {
		// Both rejection causes mean "try again later": a full queue
		// clears as workers finish, a closing server is restarting.
		w.Header().Set("Retry-After", fmt.Sprint(h.retryAfterSeconds()))
		writeEnvelope(w, CodeQueueFull, err.Error())
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+j.ID())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	var buf []byte
	if buf, err = json.Marshal(h.jobStatusDTO(j.Snapshot(), false)); err == nil {
		_, _ = w.Write(append(buf, '\n'))
	}
}

// retryAfterSeconds estimates how soon a rejected submit is worth
// retrying: one pessimistic job's worth of queue drain, bounded to keep
// the hint useful. It reads the manager's effective config — the raw
// h.cfg.Jobs may hold zeros the constructor defaulted away.
func (h *Handler) retryAfterSeconds() int {
	secs := int(h.jobs.Config().JobTimeout / (4 * time.Second))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// jobFromPath resolves the {id} path segment, answering 404 itself when
// the job is unknown (never submitted, or retention expired).
func (h *Handler) jobFromPath(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id := r.PathValue("id")
	j, ok := h.jobs.Get(id)
	if !ok {
		writeEnvelope(w, CodeJobNotFound, fmt.Sprintf("no job %q (unknown, or its result retention expired)", id))
		return nil, false
	}
	return j, true
}

// handleJob is the item endpoint: GET polls status (the result rides
// along once done), DELETE cancels.
func (h *Handler) handleJob(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		j, ok := h.jobFromPath(w, r)
		if !ok {
			return
		}
		WriteJSON(w, h.jobStatusDTO(j.Snapshot(), true))
	case http.MethodDelete:
		id := r.PathValue("id")
		j, ok := h.jobs.Cancel(id)
		if j == nil {
			writeEnvelope(w, CodeJobNotFound, fmt.Sprintf("no job %q (unknown, or its result retention expired)", id))
			return
		}
		// ok==false means the job was already terminal: canceling is
		// idempotent, the current state is the honest answer either way.
		_ = ok
		WriteJSON(w, h.jobStatusDTO(j.Snapshot(), false))
	default:
		methodNotAllowed(w, "GET, DELETE", "method "+r.Method+" not allowed (use GET or DELETE)")
	}
}

// handleJobEvents streams a job's lifecycle as Server-Sent Events:
//
//	event: state     — lifecycle transitions (queued, running)
//	event: progress  — restart completions, coalesced per consumer
//	event: done|failed|canceled — terminal, with the job status (sans
//	                   result; fetch it via GET) as data; the stream ends
//
// Progress is lossy by design (a slow consumer skips intermediate
// points); the terminal event is never lost.
func (h *Handler) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet, "the event stream requires GET")
		return
	}
	j, ok := h.jobFromPath(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeEnvelope(w, CodeInternal, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	wake, unsub := j.Subscribe()
	defer unsub()

	seq := 0
	emit := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", seq, event, data)
		seq++
		fl.Flush()
	}

	var lastVersion uint64
	var lastState jobs.State
	var lastProg jobs.Progress
	first, progSeen := true, false
	for {
		s := j.Snapshot()
		if first || s.Version != lastVersion {
			lastVersion = s.Version
			if (first || s.State != lastState) && !s.State.Terminal() {
				emit("state", h.jobStatusDTO(s, false))
				lastState = s.State
			}
			if s.HasProgress && (!progSeen || s.Progress != lastProg) {
				emit("progress", s.Progress)
				lastProg, progSeen = s.Progress, true
			}
			if s.State.Terminal() {
				emit(string(s.State), h.jobStatusDTO(s, false))
				return
			}
			first = false
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
