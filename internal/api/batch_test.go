package api

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func decodeBatch(t *testing.T, body string) BatchResponse {
	t.Helper()
	var resp BatchResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("batch json: %v\n%s", err, body)
	}
	return resp
}

// TestV1BatchMatchesIndividual pins fan-out determinism: a batch's
// elements are index-aligned with the request list and byte-identical
// (scrubbed) to the same requests issued individually.
func TestV1BatchMatchesIndividual(t *testing.T) {
	reqs := []string{
		`{"q":"movie:\"Toy Story\"","k":2}`,
		`{"q":"actor:\"Tom Hanks\"","k":3,"seed":11}`,
		`{"q":"genre:Thriller","k":2,"tasks":["sm"]}`,
	}
	code, body := post(t, "/api/v1/batch", `{"requests":[`+reqs[0]+","+reqs[1]+","+reqs[2]+`]}`)
	if code != 200 {
		t.Fatalf("batch status %d: %s", code, body)
	}
	resp := decodeBatch(t, body)
	if len(resp.Results) != len(reqs) {
		t.Fatalf("results = %d, want %d", len(resp.Results), len(reqs))
	}
	for i, r := range reqs {
		if resp.Results[i].Explain == nil {
			t.Fatalf("result %d failed: %+v", i, resp.Results[i].Error)
		}
		icode, ibody := post(t, "/api/v1/explain", r)
		if icode != 200 {
			t.Fatalf("individual %d status %d", i, icode)
		}
		batchJSON, err := json.Marshal(resp.Results[i].Explain)
		if err != nil {
			t.Fatal(err)
		}
		if string(scrub(t, string(batchJSON))) != string(scrub(t, ibody)) {
			t.Errorf("result %d diverges from the individual explain", i)
		}
	}

	// A second identical batch returns the identical payload.
	code2, body2 := post(t, "/api/v1/batch", `{"requests":[`+reqs[0]+","+reqs[1]+","+reqs[2]+`]}`)
	if code2 != 200 {
		t.Fatalf("second batch status %d", code2)
	}
	if string(scrub(t, body)) != string(scrub(t, body2)) {
		t.Error("two identical batches produced different payloads")
	}
}

// TestV1BatchPartialFailure pins the partial-failure semantics: each
// element succeeds or fails independently, the batch itself is a 200,
// and every failed element carries its machine-readable code.
func TestV1BatchPartialFailure(t *testing.T) {
	code, body := post(t, "/api/v1/batch", `{"requests":[
		{"q":"movie:\"Toy Story\"","k":2},
		{"q":"movie:\"Zyzzyva The Unfilmed\""},
		{"q":"notafield:x"},
		{"q":"movie:\"Toy Story\"","k":99}
	]}`)
	if code != 200 {
		t.Fatalf("batch status %d: %s", code, body)
	}
	resp := decodeBatch(t, body)
	if len(resp.Results) != 4 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	if resp.Results[0].Explain == nil || resp.Results[0].Error != nil {
		t.Errorf("element 0 should have succeeded: %+v", resp.Results[0])
	}
	wantCodes := []ErrorCode{CodeNoItems, CodeBadRequest, CodeBadRequest}
	for i, want := range wantCodes {
		r := resp.Results[i+1]
		if r.Explain != nil || r.Error == nil {
			t.Fatalf("element %d should have failed: %+v", i+1, r)
		}
		if r.Error.Code != want {
			t.Errorf("element %d code %q, want %q", i+1, r.Error.Code, want)
		}
	}
}

// TestV1BatchLimits pins the request-count cap and the method guard.
func TestV1BatchLimits(t *testing.T) {
	reqs := ""
	for i := 0; i <= DefaultMaxBatch; i++ {
		if i > 0 {
			reqs += ","
		}
		reqs += fmt.Sprintf(`{"q":"genre:Drama","seed":%d}`, i)
	}
	code, body := post(t, "/api/v1/batch", `{"requests":[`+reqs+`]}`)
	if code != 400 || envelopeCode(t, body) != CodeBadRequest {
		t.Errorf("oversized batch: %d %s", code, body)
	}
	code, body = post(t, "/api/v1/batch", `{"requests":[]}`)
	if code != 400 || envelopeCode(t, body) != CodeBadRequest {
		t.Errorf("empty batch: %d %s", code, body)
	}
	code, body = post(t, "/api/v1/batch", `{"requests":`)
	if code != 400 || envelopeCode(t, body) != CodeBadRequest {
		t.Errorf("truncated body: %d %s", code, body)
	}
	code, body = get(t, "/api/v1/batch")
	if code != 405 || envelopeCode(t, body) != CodeMethodNotAllowed {
		t.Errorf("batch via GET: %d %s", code, body)
	}
}

// TestV1BatchSingleflight pins the acceptance criterion that makes
// batching cheap: M identical explains in one batch — and concurrent
// identical batches on top — share exactly one mining run through the
// engine's singleflight + result cache tiers. Run under -race this also
// exercises the fan-out's synchronization.
func TestV1BatchSingleflight(t *testing.T) {
	eng := testEngine(t)
	// A knob set no other test uses, so the result cache is cold.
	el := `{"q":"movie:\"Heat\"","k":2,"seed":31337}`
	batch := `{"requests":[` + el + "," + el + "," + el + "," + el + "," + el + "," + el + `]}`

	before := eng.MineCount()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := post(t, "/api/v1/batch", batch)
			if code != 200 {
				t.Errorf("batch status %d: %s", code, body)
				return
			}
			resp := decodeBatch(t, body)
			if len(resp.Results) != 6 {
				t.Errorf("results = %d", len(resp.Results))
				return
			}
			for i, r := range resp.Results {
				if r.Explain == nil {
					t.Errorf("element %d failed: %+v", i, r.Error)
				}
			}
		}()
	}
	wg.Wait()
	if mines := eng.MineCount() - before; mines != 1 {
		t.Errorf("24 identical explains across 4 concurrent batches mined %d times, want exactly 1", mines)
	}
}
