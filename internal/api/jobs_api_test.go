package api

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

// submitJob POSTs a submit body and returns status, headers and body.
func submitJob(t *testing.T, ts *httptest.Server, body string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, resp.Header, readAll(t, resp)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return sb.String()
}

func jobStatusOf(t *testing.T, body string) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("job status json: %v\n%s", err, body)
	}
	return st
}

// pollJob polls until terminal (10s deadline) and returns the final
// status body.
func pollJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body := getFrom(t, ts, "/api/v1/jobs/"+id)
		if code != 200 {
			t.Fatalf("GET job: %d %s", code, body)
		}
		st := jobStatusOf(t, body)
		switch st.State {
		case "done", "failed", "canceled":
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never reached a terminal state")
	return JobStatus{}
}

func getFrom(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, readAll(t, resp)
}

// TestJobSubmitLifecycle covers the 202 contract and the determinism
// acceptance criterion: a job's result document must be byte-identical
// (modulo the scrubbed timing fields) to the synchronous endpoint's
// response for the same seeded request.
func TestJobSubmitLifecycle(t *testing.T) {
	ts := testServer(t)
	code, hdr, body := submitJob(t, ts, `{"op":"explain","q":"movie:\"Toy Story\"","k":2,"seed":11,"restarts":12}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202: %s", code, body)
	}
	st := jobStatusOf(t, body)
	if st.ID == "" || (st.State != "queued" && st.State != "running") {
		t.Fatalf("submit answered %+v", st)
	}
	if loc := hdr.Get("Location"); loc != "/api/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q, want /api/v1/jobs/%s", loc, st.ID)
	}

	final := pollJob(t, ts, st.ID)
	if final.State != "done" || final.Error != nil || len(final.Result) == 0 {
		t.Fatalf("final status = %+v, want done with a result", final)
	}
	if final.Started == "" || final.Finished == "" {
		t.Fatalf("missing timestamps: %+v", final)
	}

	// The corresponding synchronous call.
	syncCode, syncBody := get(t, "/api/v1/explain?q="+url.QueryEscape(`movie:"Toy Story"`)+"&k=2&seed=11&restarts=12")
	if syncCode != 200 {
		t.Fatalf("sync explain: %d %s", syncCode, syncBody)
	}
	if got, want := string(scrub(t, string(final.Result))), string(scrub(t, syncBody)); got != want {
		t.Errorf("job result diverges from the synchronous endpoint:\njob:  %s\nsync: %s", got, want)
	}
}

// TestJobSSEContract pins the event-stream shape: an SSE content type,
// `event:`/`data:` framing, at least one restart-progress event for a
// multi-restart explain, and a terminal `done` event that ends the
// stream.
func TestJobSSEContract(t *testing.T) {
	ts := testServer(t)
	// A knob set no other test uses, so the mine actually runs (cache
	// hits report no restart progress).
	code, _, body := submitJob(t, ts, `{"op":"explain","q":"genre:Thriller","k":2,"seed":23,"restarts":20}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	id := jobStatusOf(t, body).ID

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	type event struct {
		typ  string
		data string
	}
	var events []event
	var cur event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.typ != "" {
				events = append(events, cur)
			}
			cur = event{}
		case strings.HasPrefix(line, "event:"):
			cur.typ = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			cur.data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("stream delivered no events")
	}
	last := events[len(events)-1]
	if last.typ != "done" {
		t.Fatalf("last event = %q, want done (events: %+v)", last.typ, events)
	}
	finalSt := jobStatusOf(t, last.data)
	if finalSt.State != "done" || len(finalSt.Result) != 0 {
		t.Fatalf("terminal event payload = %+v, want done without inline result", finalSt)
	}
	progress := 0
	for _, ev := range events {
		if ev.typ != "progress" {
			continue
		}
		progress++
		var p JobProgress
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("progress payload %q: %v", ev.data, err)
		}
		if p.Total != 20 || p.Done < 1 || p.Done > p.Total {
			t.Fatalf("progress %+v out of range (total should be 20)", p)
		}
	}
	if progress < 1 {
		t.Fatalf("stream delivered %d progress events, want >= 1 (events: %+v)", progress, events)
	}
}

// TestJobQueueFull pins admission control: with the pool gated and the
// one queue slot taken, the next submit answers 429 + Retry-After +
// queue_full — not a hung connection. The gated backlog is then
// released and drains normally.
func TestJobQueueFull(t *testing.T) {
	eng := testEngine(t)
	gate := make(chan struct{})
	h := New(eng, Config{Jobs: jobs.Config{Workers: 1, Queue: 1, Gate: gate}})
	ts := httptest.NewServer(h)
	defer ts.Close()
	defer close(gate)

	submit := `{"op":"explain","q":"movie:\"Toy Story\"","k":2}`
	code, _, body := submitJob(t, ts, submit)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", code, body)
	}
	// Wait for the gated worker to take the first job off the queue so
	// the second submit deterministically occupies the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for h.JobStats().Queued != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the first job")
		}
		time.Sleep(time.Millisecond)
	}
	code, _, body = submitJob(t, ts, submit)
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", code, body)
	}

	start := time.Now()
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(submit))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rejected := readAll(t, resp)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("rejection took %s — admission control must not block", elapsed)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, rejected)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// The hint must come from the effective job timeout (the default,
	// since this config left it zero), not the raw zero: 5m/4 = 75s,
	// clamped to the 30s cap — not the 1s floor.
	if ra := resp.Header.Get("Retry-After"); ra != "30" {
		t.Fatalf("Retry-After = %q, want 30 (derived from the defaulted job timeout)", ra)
	}
	if c := envelopeCode(t, rejected); c != CodeQueueFull {
		t.Fatalf("code = %q, want queue_full", c)
	}
}

// TestJobCancelQueued cancels a job the gated pool never started.
func TestJobCancelQueued(t *testing.T) {
	eng := testEngine(t)
	gate := make(chan struct{})
	h := New(eng, Config{Jobs: jobs.Config{Workers: 1, Queue: 4, Gate: gate}})
	ts := httptest.NewServer(h)
	defer ts.Close()
	defer close(gate)

	_, _, body := submitJob(t, ts, `{"op":"explain","q":"movie:\"Toy Story\"","k":2}`)
	id := jobStatusOf(t, body).ID

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	st := jobStatusOf(t, readAll(t, resp))
	if resp.StatusCode != 200 || st.State != "canceled" {
		t.Fatalf("cancel answered %d %+v, want canceled", resp.StatusCode, st)
	}
}

// TestJobErrors covers the failure contract of the async surface.
func TestJobErrors(t *testing.T) {
	ts := testServer(t)

	t.Run("unknown job", func(t *testing.T) {
		code, body := get(t, "/api/v1/jobs/job-999999")
		if code != 404 || envelopeCode(t, body) != CodeJobNotFound {
			t.Fatalf("got %d %s, want 404 job_not_found", code, body)
		}
	})
	t.Run("unknown job events", func(t *testing.T) {
		code, body := get(t, "/api/v1/jobs/job-999999/events")
		if code != 404 || envelopeCode(t, body) != CodeJobNotFound {
			t.Fatalf("got %d %s, want 404 job_not_found", code, body)
		}
	})
	t.Run("bad op", func(t *testing.T) {
		code, _, body := submitJob(t, ts, `{"op":"teleport","q":"movie:\"Toy Story\""}`)
		if code != 400 || envelopeCode(t, body) != CodeBadRequest {
			t.Fatalf("got %d %s, want 400 bad_request", code, body)
		}
	})
	t.Run("bad params fail at submit", func(t *testing.T) {
		code, _, body := submitJob(t, ts, `{"op":"explain","q":"movie:\"Toy Story\"","k":99}`)
		if code != 400 || envelopeCode(t, body) != CodeBadRequest {
			t.Fatalf("got %d %s, want 400 bad_request", code, body)
		}
	})
	t.Run("GET on the collection", func(t *testing.T) {
		code, body := get(t, "/api/v1/jobs")
		if code != 405 || envelopeCode(t, body) != CodeMethodNotAllowed {
			t.Fatalf("got %d %s, want 405", code, body)
		}
	})
	t.Run("mining failure becomes a failed job", func(t *testing.T) {
		_, _, body := submitJob(t, ts, `{"op":"explain","q":"movie:\"Zyzzyva The Unfilmed\""}`)
		st := pollJob(t, ts, jobStatusOf(t, body).ID)
		if st.State != "failed" || st.Error == nil || st.Error.Code != CodeNoItems {
			t.Fatalf("status = %+v, want failed/no_items", st)
		}
	})
}

// TestJobOpsMatchSyncEndpoints runs every non-explain op through the job
// surface and checks the result document against its synchronous twin.
func TestJobOpsMatchSyncEndpoints(t *testing.T) {
	ts := testServer(t)
	toyStory := url.QueryEscape(`movie:"Toy Story"`)
	caKey := url.QueryEscape("state=CA")
	cases := []struct {
		op   string
		body string
		sync string
	}{
		{"group", `{"op":"group","q":"movie:\"Toy Story\"","key":"state=CA","buckets":4,"limit":3}`,
			"/api/v1/group?q=" + toyStory + "&key=" + caKey + "&buckets=4&limit=3"},
		{"refine", `{"op":"refine","q":"movie:\"Toy Story\"","key":"state=CA","limit":5}`,
			"/api/v1/refine?q=" + toyStory + "&key=" + caKey + "&limit=5"},
		{"drill", `{"op":"drill","q":"movie:\"Toy Story\"","key":"state=CA","k":2}`,
			"/api/v1/drill?q=" + toyStory + "&key=" + caKey + "&k=2"},
		{"evolution", `{"op":"evolution","q":"movie:\"Toy Story\"","from":1999,"to":2001,"k":2,"tasks":["sm"]}`,
			"/api/v1/evolution?q=" + toyStory + "&from=1999&to=2001&k=2&tasks=sm"},
	}
	for _, c := range cases {
		t.Run(c.op, func(t *testing.T) {
			code, _, body := submitJob(t, ts, c.body)
			if code != http.StatusAccepted {
				t.Fatalf("submit: %d %s", code, body)
			}
			st := pollJob(t, ts, jobStatusOf(t, body).ID)
			if st.State != "done" {
				t.Fatalf("job state %q: %+v", st.State, st)
			}
			syncCode, syncBody := get(t, c.sync)
			if syncCode != 200 {
				t.Fatalf("sync: %d %s", syncCode, syncBody)
			}
			if got, want := string(scrub(t, string(st.Result))), string(scrub(t, syncBody)); got != want {
				t.Errorf("job result diverges from sync:\njob:  %s\nsync: %s", got, want)
			}
		})
	}
}
