package api

import (
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"repro"
)

// TestV1DecoderParity pins GET/POST equivalence: the same knob set
// supplied as query parameters and as a JSON body must decode to the
// identical engine request.
func TestV1DecoderParity(t *testing.T) {
	cases := []struct {
		name  string
		query string
		body  string
	}{
		{
			"minimal",
			`q=movie:"Toy Story"`,
			`{"q":"movie:\"Toy Story\""}`,
		},
		{
			"every mining knob",
			`q=movie:"Toy Story"&k=5&coverage=0.15&profile=gender=female&seed=9&restarts=4&tasks=sm,dm&relax=false&from=1999&to=2001&geo=off`,
			`{"q":"movie:\"Toy Story\"","k":5,"coverage":0.15,"profile":"gender=female","seed":9,"restarts":4,"tasks":["sm","dm"],"relax":false,"from":1999,"to":2001,"geo":"off"}`,
		},
		{
			"single task, long name",
			`q=genre:Drama&tasks=diversity`,
			`{"q":"genre:Drama","tasks":["diversity"]}`,
		},
		{
			"exploration fields",
			`q=movie:"Toy Story"&key=state=CA&buckets=4&limit=3&task=dm`,
			`{"q":"movie:\"Toy Story\"","key":"state=CA","buckets":4,"limit":3,"task":"dm"}`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			getReq := httptest.NewRequest("GET", "/api/v1/explain?"+encodeQuery(c.query), nil)
			postReq := httptest.NewRequest("POST", "/api/v1/explain", strings.NewReader(c.body))

			gp, err := DecodeParams(getReq)
			if err != nil {
				t.Fatalf("GET decode: %v", err)
			}
			pp, err := DecodeParams(postReq)
			if err != nil {
				t.Fatalf("POST decode: %v", err)
			}
			if !reflect.DeepEqual(gp, pp) {
				t.Fatalf("params diverge:\nGET  %+v\nPOST %+v", gp, pp)
			}

			greq, gerr := gp.ExplainRequest()
			preq, perr := pp.ExplainRequest()
			if (gerr == nil) != (perr == nil) {
				t.Fatalf("request errors diverge: GET %v, POST %v", gerr, perr)
			}
			if gerr == nil && !reflect.DeepEqual(greq, preq) {
				t.Fatalf("requests diverge:\nGET  %+v\nPOST %+v", greq, preq)
			}
		})
	}
}

// encodeQuery URL-encodes a human-readable k=v&k=v string.
func encodeQuery(s string) string {
	vals := url.Values{}
	for _, kv := range strings.Split(s, "&") {
		k, v, _ := strings.Cut(kv, "=")
		vals.Add(k, v)
	}
	return vals.Encode()
}

// TestV1DecoderDefaults pins the default request: both sub-problems,
// demo settings, relaxation on, state-anchored cube.
func TestV1DecoderDefaults(t *testing.T) {
	r := httptest.NewRequest("GET", `/api/v1/explain?q=`+url.QueryEscape(`movie:"Toy Story"`), nil)
	p, err := DecodeParams(r)
	if err != nil {
		t.Fatal(err)
	}
	req, err := p.ExplainRequest()
	if err != nil {
		t.Fatal(err)
	}
	// Settings carries a func field (Progress), so compare reflectively;
	// DeepEqual treats the two nil callbacks as equal.
	if !reflect.DeepEqual(req.Settings, maprat.DefaultSettings()) {
		t.Errorf("settings = %+v, want defaults", req.Settings)
	}
	if req.DisableRelax || req.CubeConfig != nil || len(req.Tasks) != 0 {
		t.Errorf("non-default request: %+v", req)
	}
	if !req.Query.Window.IsAll() {
		t.Errorf("window = %+v, want all time", req.Query.Window)
	}
}

// TestV1DecoderKnobs drives each knob through validation.
func TestV1DecoderKnobs(t *testing.T) {
	base := `q=` + url.QueryEscape(`movie:"Toy Story"`)
	good := []struct {
		name  string
		extra string
		check func(t *testing.T, req maprat.ExplainRequest)
	}{
		{"seed", "seed=42", func(t *testing.T, req maprat.ExplainRequest) {
			if req.Settings.Seed != 42 {
				t.Errorf("seed = %d", req.Settings.Seed)
			}
		}},
		{"restarts", "restarts=2", func(t *testing.T, req maprat.ExplainRequest) {
			if req.Settings.Restarts != 2 {
				t.Errorf("restarts = %d", req.Settings.Restarts)
			}
		}},
		{"tasks sm only", "tasks=sm", func(t *testing.T, req maprat.ExplainRequest) {
			if len(req.Tasks) != 1 || req.Tasks[0] != maprat.SimilarityMining {
				t.Errorf("tasks = %v", req.Tasks)
			}
		}},
		{"relax off", "relax=false", func(t *testing.T, req maprat.ExplainRequest) {
			if !req.DisableRelax {
				t.Error("relax=false did not disable relaxation")
			}
		}},
		{"geo off", "geo=off", func(t *testing.T, req maprat.ExplainRequest) {
			if req.CubeConfig == nil || req.CubeConfig.RequireState {
				t.Errorf("geo=off cube config = %+v", req.CubeConfig)
			}
		}},
		{"window", "from=1999&to=2001", func(t *testing.T, req maprat.ExplainRequest) {
			if !req.Query.Window.BoundedFrom() || !req.Query.Window.BoundedTo() {
				t.Errorf("window = %+v", req.Query.Window)
			}
		}},
	}
	for _, c := range good {
		t.Run(c.name, func(t *testing.T) {
			r := httptest.NewRequest("GET", "/api/v1/explain?"+base+"&"+c.extra, nil)
			p, err := DecodeParams(r)
			if err != nil {
				t.Fatal(err)
			}
			req, err := p.ExplainRequest()
			if err != nil {
				t.Fatal(err)
			}
			c.check(t, req)
		})
	}
}

// TestV1DecoderBadKnobs pins validation failures: every bad knob is a
// bad_request, for GET and POST alike.
func TestV1DecoderBadKnobs(t *testing.T) {
	cases := []struct {
		name  string
		query string
		body  string
	}{
		{"missing q", ``, `{}`},
		{"bad query syntax", `q=notafield:x`, `{"q":"notafield:x"}`},
		{"k too large", `q=genre:Drama&k=99`, `{"q":"genre:Drama","k":99}`},
		{"k zero", `q=genre:Drama&k=0`, `{"q":"genre:Drama","k":0}`},
		{"coverage out of range", `q=genre:Drama&coverage=7`, `{"q":"genre:Drama","coverage":7}`},
		{"bad profile", `q=genre:Drama&profile=zz=1`, `{"q":"genre:Drama","profile":"zz=1"}`},
		{"restarts out of range", `q=genre:Drama&restarts=100000`, `{"q":"genre:Drama","restarts":100000}`},
		{"bad task name", `q=genre:Drama&tasks=xx`, `{"q":"genre:Drama","tasks":["xx"]}`},
		{"bad geo", `q=genre:Drama&geo=sideways`, `{"q":"genre:Drama","geo":"sideways"}`},
		{"inverted window", `q=genre:Drama&from=2001&to=1999`, `{"q":"genre:Drama","from":2001,"to":1999}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, enc := range []string{"GET", "POST"} {
				var r = httptest.NewRequest("GET", "/api/v1/explain?"+encodeQuery(c.query), nil)
				if enc == "POST" {
					r = httptest.NewRequest("POST", "/api/v1/explain", strings.NewReader(c.body))
				}
				p, err := DecodeParams(r)
				if err == nil {
					_, err = p.ExplainRequest()
				}
				if err == nil {
					t.Fatalf("%s: no error for bad knob", enc)
				}
				if !IsBadRequest(err) {
					t.Errorf("%s: error %v is not a bad request", enc, err)
				}
			}
		})
	}

	// Syntactically malformed values only exist in the GET encoding.
	for _, q := range []string{
		`q=genre:Drama&k=abc`, `q=genre:Drama&coverage=x`, `q=genre:Drama&seed=x`,
		`q=genre:Drama&relax=maybe`, `q=genre:Drama&from=abcd`, `q=genre:Drama&limit=x`,
	} {
		r := httptest.NewRequest("GET", "/api/v1/explain?"+encodeQuery(q), nil)
		if _, err := DecodeParams(r); err == nil || !IsBadRequest(err) {
			t.Errorf("query %q: err = %v, want bad request", q, err)
		}
	}

	// Unknown JSON fields are rejected (typo'd knobs must not be
	// silently ignored).
	r := httptest.NewRequest("POST", "/api/v1/explain", strings.NewReader(`{"q":"genre:Drama","coverage_":0.5}`))
	if _, err := DecodeParams(r); err == nil || !IsBadRequest(err) {
		t.Errorf("unknown JSON field: err = %v, want bad request", err)
	}
}

// TestV1EndToEndParity drives GET/POST parity through the live handler:
// identical knobs must produce byte-identical (scrubbed) payloads.
func TestV1EndToEndParity(t *testing.T) {
	q := url.QueryEscape(`movie:"Toy Story"`)
	gcode, gbody := get(t, "/api/v1/explain?q="+q+"&k=2&seed=5")
	pcode, pbody := post(t, "/api/v1/explain", `{"q":"movie:\"Toy Story\"","k":2,"seed":5}`)
	if gcode != 200 || pcode != 200 {
		t.Fatalf("status GET=%d POST=%d", gcode, pcode)
	}
	if g, p := scrub(t, gbody), scrub(t, pbody); string(g) != string(p) {
		t.Errorf("GET and POST payloads diverge:\n%s\n---\n%s", g, p)
	}
}
