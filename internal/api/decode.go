// Package api is MapRat's versioned HTTP transport layer: the /api/v1
// surface over all five mining pipelines (explain, per-group exploration,
// refinement, city drill-down, evolution) plus browse mode and a batched
// explain. It owns the wire DTOs, the shared request decoder (GET query
// params and POST JSON bodies decode identically), the structured error
// envelope with machine-readable codes, and the middleware stack (request
// ID, panic recovery, access log, per-endpoint metrics) the server mounts
// it behind. The HTML front-end in internal/server reuses the decoder and
// the error→status mapping so the two surfaces cannot drift.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/query"
	"repro/internal/store"
)

// maxBodyBytes bounds a POST body; a batch of the maximum size fits with
// room to spare.
const maxBodyBytes = 1 << 20

// Params is the wire form of a v1 request: the full knob set shared by
// every mining endpoint, plus the exploration fields (key, buckets, limit,
// task) the per-group endpoints add. A GET request supplies them as query
// parameters; a POST request as a JSON body with the same names. Pointer
// fields distinguish "absent" (default) from an explicit zero.
type Params struct {
	// Q is the item query in the Figure-1 syntax, e.g.
	// `movie:"Toy Story"`. Required on every endpoint that mines.
	Q string `json:"q"`
	// K is the maximum number of returned groups (1..12).
	K *int `json:"k,omitempty"`
	// Coverage is the α coverage constraint in [0,1].
	Coverage *float64 `json:"coverage,omitempty"`
	// Profile constrains candidates to groups compatible with the
	// querying user's self-description, e.g. "gender=female,age=under 18".
	Profile string `json:"profile,omitempty"`
	// Seed makes the randomized solver deterministic.
	Seed *int64 `json:"seed,omitempty"`
	// Restarts overrides the RHE restart count (1..256).
	Restarts *int `json:"restarts,omitempty"`
	// Tasks selects the mining sub-problems: "sm", "dm" (default both).
	// A GET request passes tasks=sm,dm.
	Tasks []string `json:"tasks,omitempty"`
	// Relax controls stepwise α relaxation on infeasible instances
	// (default true, matching the web demo).
	Relax *bool `json:"relax,omitempty"`
	// From and To restrict ratings to calendar years (inclusive).
	From *int `json:"from,omitempty"`
	To   *int `json:"to,omitempty"`
	// Epoch pins the request to a data version under live ingestion
	// (absent or 0 = latest). A pinned response is byte-identical no
	// matter how many batches were appended after that epoch.
	Epoch *uint64 `json:"epoch,omitempty"`
	// Geo is "" or "on" for the demo's state-anchored groups, "off" for
	// the framework mode (groups without a geo-condition).
	Geo string `json:"geo,omitempty"`
	// Dataset selects the mounted dataset on a multi-dataset server
	// ("" = the default mount). A GET request may pass ?dataset= or the
	// X-Maprat-Dataset header instead.
	Dataset string `json:"dataset,omitempty"`

	// Key identifies the group for /group, /refine and /drill, in the
	// comma-separated descriptor form, e.g. "gender=male,state=CA".
	Key string `json:"key,omitempty"`
	// Buckets is the /group timeline resolution (0 = default).
	Buckets *int `json:"buckets,omitempty"`
	// Limit caps the refinement list (0 = all).
	Limit *int `json:"limit,omitempty"`
	// Task selects the /drill sub-problem: "sm" (default) or "dm".
	Task string `json:"task,omitempty"`
}

// badRequestError marks a decode/validation failure; handlers map it to
// CodeBadRequest.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// IsBadRequest reports whether err is a decode/validation failure.
func IsBadRequest(err error) bool {
	_, ok := err.(*badRequestError)
	return ok
}

// methodError marks an unsupported HTTP method; the v1 surface answers
// it with 405 and the Allow header rather than a plain bad request.
type methodError struct{ allow, msg string }

func (e *methodError) Error() string { return e.msg }

// tooLargeError marks a POST body over maxBodyBytes; answered with 413
// so the client learns the body was oversized rather than "bad JSON".
type tooLargeError struct{ msg string }

func (e *tooLargeError) Error() string { return e.msg }

// decodeBody decodes a JSON request body into v, distinguishing an
// oversized body (413) from malformed JSON (400). http.MaxBytesReader
// (rather than a plain LimitReader) yields a typed error at the cap and
// closes the connection properly.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &tooLargeError{msg: fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes)}
		}
		return badRequestf("bad JSON body: %v", err)
	}
	return nil
}

// DecodeParams reads the request's knobs: from the URL query on GET, from
// a JSON body on POST (unknown JSON fields are rejected; unknown query
// parameters are ignored so HTML forms can carry extras). The two
// encodings decode to identical Params.
func DecodeParams(r *http.Request) (Params, error) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		return paramsFromQuery(r)
	case http.MethodPost:
		return paramsFromBody(r)
	default:
		return Params{}, &methodError{allow: "GET, POST", msg: "method " + r.Method + " not allowed (use GET or POST)"}
	}
}

func paramsFromBody(r *http.Request) (Params, error) {
	var p Params
	if err := decodeBody(r, &p); err != nil {
		return Params{}, err
	}
	return p, nil
}

func paramsFromQuery(r *http.Request) (Params, error) {
	q := r.URL.Query()
	p := Params{
		Q:       q.Get("q"),
		Profile: q.Get("profile"),
		Geo:     q.Get("geo"),
		Key:     q.Get("key"),
		Task:    q.Get("task"),
		Dataset: q.Get("dataset"),
	}
	if v := q.Get("tasks"); v != "" {
		p.Tasks = strings.Split(v, ",")
	}
	var err error
	if p.K, err = intParam(q.Get("k"), "k"); err != nil {
		return p, err
	}
	if p.Coverage, err = floatParam(q.Get("coverage"), "coverage"); err != nil {
		return p, err
	}
	if p.Seed, err = int64Param(q.Get("seed"), "seed"); err != nil {
		return p, err
	}
	if p.Restarts, err = intParam(q.Get("restarts"), "restarts"); err != nil {
		return p, err
	}
	if p.Relax, err = boolParam(q.Get("relax"), "relax"); err != nil {
		return p, err
	}
	if p.From, err = intParam(q.Get("from"), "from"); err != nil {
		return p, err
	}
	if p.To, err = intParam(q.Get("to"), "to"); err != nil {
		return p, err
	}
	if p.Epoch, err = uint64Param(q.Get("epoch"), "epoch"); err != nil {
		return p, err
	}
	if p.Buckets, err = intParam(q.Get("buckets"), "buckets"); err != nil {
		return p, err
	}
	if p.Limit, err = intParam(q.Get("limit"), "limit"); err != nil {
		return p, err
	}
	return p, nil
}

func intParam(v, name string) (*int, error) {
	if v == "" {
		return nil, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return nil, badRequestf("bad %s %q (want an integer)", name, v)
	}
	return &n, nil
}

func int64Param(v, name string) (*int64, error) {
	if v == "" {
		return nil, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return nil, badRequestf("bad %s %q (want an integer)", name, v)
	}
	return &n, nil
}

func uint64Param(v, name string) (*uint64, error) {
	if v == "" {
		return nil, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return nil, badRequestf("bad %s %q (want an unsigned integer)", name, v)
	}
	return &n, nil
}

func floatParam(v, name string) (*float64, error) {
	if v == "" {
		return nil, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return nil, badRequestf("bad %s %q (want a number)", name, v)
	}
	return &f, nil
}

func boolParam(v, name string) (*bool, error) {
	if v == "" {
		return nil, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return nil, badRequestf("bad %s %q (want true or false)", name, v)
	}
	return &b, nil
}

// ParseTask resolves a task name ("sm", "dm", case-insensitive, long
// forms accepted) to the mining sub-problem.
func ParseTask(s string) (maprat.Task, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sm", "similarity":
		return maprat.SimilarityMining, nil
	case "dm", "diversity":
		return maprat.DiversityMining, nil
	}
	return 0, badRequestf("bad task %q (want sm or dm)", s)
}

// ExplainRequest validates the knobs and builds the engine request — the
// one decode path both the HTML handlers and every v1 endpoint go
// through (it replaced the server's ad-hoc parseRequest).
func (p Params) ExplainRequest() (maprat.ExplainRequest, error) {
	var req maprat.ExplainRequest
	if strings.TrimSpace(p.Q) == "" {
		return req, badRequestf("missing q parameter")
	}
	q, err := query.Parse(p.Q)
	if err != nil {
		return req, badRequestf("bad query: %v", err)
	}
	settings := maprat.DefaultSettings()
	if p.K != nil {
		if *p.K < 1 || *p.K > 12 {
			return req, badRequestf("bad k %d (want 1..12)", *p.K)
		}
		settings.K = *p.K
	}
	if p.Coverage != nil {
		if *p.Coverage < 0 || *p.Coverage > 1 {
			return req, badRequestf("bad coverage %g (want 0..1)", *p.Coverage)
		}
		settings.Coverage = *p.Coverage
	}
	if p.Profile != "" {
		key, err := cube.ParseKey(p.Profile)
		if err != nil {
			return req, badRequestf("bad profile: %v", err)
		}
		settings.Profile = key
	}
	if p.Seed != nil {
		settings.Seed = *p.Seed
	}
	if p.Restarts != nil {
		if *p.Restarts < 1 || *p.Restarts > 256 {
			return req, badRequestf("bad restarts %d (want 1..256)", *p.Restarts)
		}
		settings.Restarts = *p.Restarts
	}
	q.Window, err = p.window()
	if err != nil {
		return req, err
	}
	if p.Epoch != nil {
		q.Epoch = *p.Epoch
	}
	req = maprat.ExplainRequest{Query: q, Settings: settings}
	for _, ts := range p.Tasks {
		task, err := ParseTask(ts)
		if err != nil {
			return req, err
		}
		req.Tasks = append(req.Tasks, task)
	}
	if p.Relax != nil && !*p.Relax {
		req.DisableRelax = true
	}
	switch p.Geo {
	case "", "on":
	case "off":
		free := cube.Config{RequireState: false, MinSupport: 8, MaxAVPairs: 2, SkipApex: true}
		req.CubeConfig = &free
	default:
		return req, badRequestf("bad geo %q (want on or off)", p.Geo)
	}
	return req, nil
}

// window converts the From/To years into the inclusive rating window.
func (p Params) window() (store.TimeWindow, error) {
	var w store.TimeWindow
	if p.From != nil {
		w.From = time.Date(*p.From, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
		w.HasFrom = true
	}
	if p.To != nil {
		w.To = time.Date(*p.To+1, 1, 1, 0, 0, 0, 0, time.UTC).Unix() - 1
		w.HasTo = true
	}
	if p.From != nil && p.To != nil && *p.To < *p.From {
		return w, badRequestf("bad window: to year %d before from year %d", *p.To, *p.From)
	}
	return w, nil
}

// GroupKey parses the required key parameter of the per-group endpoints.
func (p Params) GroupKey() (maprat.Key, error) {
	if strings.TrimSpace(p.Key) == "" {
		return maprat.Key{}, badRequestf("missing key parameter")
	}
	key, err := cube.ParseKey(p.Key)
	if err != nil {
		return maprat.Key{}, badRequestf("bad key: %v", err)
	}
	return key, nil
}

// DrillTask parses the optional task parameter (default Similarity
// Mining, matching the paper's city drill-down example).
func (p Params) DrillTask() (core.Task, error) {
	if strings.TrimSpace(p.Task) == "" {
		return maprat.SimilarityMining, nil
	}
	return ParseTask(p.Task)
}

// RefineLimit validates the optional refinement cap shared by /group and
// /refine: absent or 0 means all refinements.
func (p Params) RefineLimit() (int, error) {
	if p.Limit == nil {
		return 0, nil
	}
	if *p.Limit < 0 {
		return 0, badRequestf("bad limit %d (want >= 0)", *p.Limit)
	}
	return *p.Limit, nil
}

// TimelineBuckets validates the optional /group timeline resolution
// (0 = the explore default).
func (p Params) TimelineBuckets() (int, error) {
	if p.Buckets == nil {
		return 0, nil
	}
	if *p.Buckets < 0 || *p.Buckets > 256 {
		return 0, badRequestf("bad buckets %d (want 0..256)", *p.Buckets)
	}
	return *p.Buckets, nil
}
