package api

import (
	"repro"
	"repro/internal/geo"
	"repro/internal/viz"
)

// GeoJSON is a FeatureCollection-shaped choropleth layer: one Polygon
// feature per shaded state, positioned on the same tile-grid cartogram
// the SVG renderer uses but projected into pseudo lon/lat so standard
// web-mapping clients (Leaflet, MapLibre, d3-geo) can render it without
// a separate basemap. Fill colours are precomputed server-side on the
// paper's red→green Likert scale so the client needs no scale logic.
type GeoJSON struct {
	Type     string    `json:"type"` // always "FeatureCollection"
	Features []Feature `json:"features"`
}

// Feature is one GeoJSON feature.
type Feature struct {
	Type       string          `json:"type"` // always "Feature"
	Geometry   Geometry        `json:"geometry"`
	Properties ShadeProperties `json:"properties"`
}

// Geometry is the feature's Polygon: a single counter-clockwise ring.
type Geometry struct {
	Type        string         `json:"type"` // always "Polygon"
	Coordinates [][][2]float64 `json:"coordinates"`
}

// ShadeProperties carries everything a client-side choropleth needs to
// shade and caption one state tile.
type ShadeProperties struct {
	State string `json:"state"`
	Name  string `json:"name"`
	// Mean drives the fill; Fill is the precomputed #rrggbb Likert
	// colour for clients that do not want to own the scale.
	Mean  float64 `json:"mean"`
	Count int     `json:"count"`
	Fill  string  `json:"fill"`
	// Label and Icons caption the dominant group on this tile ("" for
	// browse mode's whole-population shades).
	Label string `json:"label,omitempty"`
	Icons string `json:"icons,omitempty"`
}

// The cartogram projection: tile (row, col) → a pseudo lon/lat cell.
// Column 0 starts at the west edge, row 0 at the north edge; cell sizes
// keep the whole grid inside plausible US bounds.
const (
	geoWestLon  = -125.0
	geoNorthLat = 50.0
	geoCellLon  = 5.0
	geoCellLat  = 4.0
)

// tilePolygon builds the counter-clockwise ring for a state's tile.
func tilePolygon(row, col int) [][][2]float64 {
	w := geoWestLon + float64(col)*geoCellLon
	e := w + geoCellLon
	n := geoNorthLat - float64(row)*geoCellLat
	s := n - geoCellLat
	return [][][2]float64{{{w, s}, {e, s}, {e, n}, {w, n}, {w, s}}}
}

func stateFeature(code string, props ShadeProperties) (Feature, bool) {
	st := geo.StateByCode(code)
	if st == nil {
		return Feature{}, false
	}
	props.State = code
	props.Name = st.Name
	return Feature{
		Type:       "Feature",
		Geometry:   Geometry{Type: "Polygon", Coordinates: tilePolygon(st.Row, st.Col)},
		Properties: props,
	}, true
}

// groupsGeoJSON builds the per-task choropleth layer. When several
// groups share a state, the one with the most ratings wins the tile
// (matching the SVG renderer's dominant-shade rule). Returns nil when no
// group carries a geo-condition (framework mode), so the field is
// omitted rather than an empty collection.
func groupsGeoJSON(groups []Group) *GeoJSON {
	dominant := map[string]Group{}
	order := []string{}
	for _, g := range groups {
		if g.State == "" {
			continue
		}
		if cur, ok := dominant[g.State]; !ok {
			dominant[g.State] = g
			order = append(order, g.State)
		} else if g.Count > cur.Count {
			dominant[g.State] = g
		}
	}
	if len(order) == 0 {
		return nil
	}
	gj := &GeoJSON{Type: "FeatureCollection"}
	for _, code := range order {
		g := dominant[code]
		f, ok := stateFeature(code, ShadeProperties{
			Mean:  g.Mean,
			Count: g.Count,
			Fill:  viz.Hex(g.Mean),
			Label: g.Phrase,
			Icons: g.Icons,
		})
		if ok {
			gj.Features = append(gj.Features, f)
		}
	}
	return gj
}

// browseGeoJSON builds the whole-log browse choropleth layer.
func browseGeoJSON(states []maprat.StateOverview) *GeoJSON {
	gj := &GeoJSON{Type: "FeatureCollection"}
	for _, st := range states {
		f, ok := stateFeature(st.State, ShadeProperties{
			Mean:  st.Agg.Mean(),
			Count: st.Agg.Count,
			Fill:  viz.Hex(st.Agg.Mean()),
		})
		if ok {
			gj.Features = append(gj.Features, f)
		}
	}
	return gj
}
