package maprat

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/cube"
	"repro/internal/model"
)

var (
	engOnce sync.Once
	engMemo *Engine
)

// testEngine memoizes one engine over the small synthetic dataset.
func testEngine(t testing.TB) *Engine {
	t.Helper()
	engOnce.Do(func() {
		ds, err := Generate(SmallGenConfig())
		if err != nil {
			panic(err)
		}
		engMemo, err = Open(ds, nil)
		if err != nil {
			panic(err)
		}
	})
	return engMemo
}

func mustQuery(t testing.TB, e *Engine, s string) Query {
	t.Helper()
	q, err := e.ParseQuery(s)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", s, err)
	}
	return q
}

func TestExplainToyStory(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	ex, err := e.Explain(ExplainRequest{Query: q})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(ex.ItemIDs) != 1 {
		t.Fatalf("ItemIDs = %v", ex.ItemIDs)
	}
	if ex.NumRatings < 100 {
		t.Fatalf("NumRatings = %d, planted Toy Story should be popular", ex.NumRatings)
	}
	if ex.Overall.Mean() < 3.5 {
		t.Errorf("overall mean = %.2f, planted quality 4.25", ex.Overall.Mean())
	}
	if len(ex.Results) != 2 {
		t.Fatalf("Results = %d tasks, want SM and DM", len(ex.Results))
	}

	sm := ex.Result(SimilarityMining)
	if sm == nil || !sm.Feasible {
		t.Fatalf("SM result unusable: %+v", sm)
	}
	if len(sm.Groups) == 0 || len(sm.Groups) > 3 {
		t.Fatalf("SM groups = %d, want 1..3", len(sm.Groups))
	}
	for _, g := range sm.Groups {
		if g.State == "" {
			t.Errorf("group %v lacks the mandatory geo-condition", g.Key)
		}
		if g.Phrase == "" || g.Icons == "" {
			t.Errorf("group %v missing captions", g.Key)
		}
		if g.Agg.Count == 0 {
			t.Errorf("group %v empty", g.Key)
		}
	}
	if sm.Coverage < sm.RelaxedCoverage-1e-9 {
		t.Errorf("coverage %f below the α actually enforced %f", sm.Coverage, sm.RelaxedCoverage)
	}

	dm := ex.Result(DiversityMining)
	if dm == nil || !dm.Feasible || len(dm.Groups) < 2 {
		t.Fatalf("DM result unusable: %+v", dm)
	}
}

func TestExplainCacheHit(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Heat"`)
	req := ExplainRequest{Query: q}
	first, err := e.Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Fatal("first call claims cache hit")
	}
	second, err := e.Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Fatal("second call missed the cache")
	}
	if second.NumRatings != first.NumRatings || len(second.Results) != len(first.Results) {
		t.Error("cached explanation differs")
	}
	third, err := e.Explain(ExplainRequest{Query: q, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if third.FromCache {
		t.Error("DisableCache still hit the cache")
	}
}

func TestExplainErrors(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"No Such Movie Exists"`)
	if _, err := e.Explain(ExplainRequest{Query: q}); !errors.Is(err, ErrNoItems) {
		t.Errorf("want ErrNoItems, got %v", err)
	}
	q2 := mustQuery(t, e, `movie:"Toy Story"`)
	q2.Window = TimeWindow{From: 1, To: 2} // before any rating
	if _, err := e.Explain(ExplainRequest{Query: q2}); !errors.Is(err, ErrNoRatings) {
		t.Errorf("want ErrNoRatings, got %v", err)
	}
}

func TestExplainPolarizedDM(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"The Twilight Saga: Eclipse"`)
	// The intro's Twilight analysis is framework-mode (no geo anchoring):
	// the disagreeing sub-populations are demographic, not geographic.
	s := DefaultSettings()
	s.K = 2
	s.Coverage = 0.10
	free := cube.Config{RequireState: false, MinSupport: 8, MaxAVPairs: 2, SkipApex: true}
	ex, err := e.Explain(ExplainRequest{
		Query: q, Settings: s, Tasks: []Task{DiversityMining}, CubeConfig: &free,
	})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if m := ex.Overall.Mean(); m < 2.0 || m > 3.0 {
		t.Errorf("Eclipse overall mean = %.2f, want ≈ 2.4 (paper: 4.8/10)", m)
	}
	dm := ex.Result(DiversityMining)
	if dm == nil || len(dm.Groups) < 2 {
		t.Fatalf("DM groups: %+v", dm)
	}
	// The polarized structure must surface: some pair of returned groups
	// disagrees by at least 1.2 stars.
	maxGap := 0.0
	for i := range dm.Groups {
		for j := i + 1; j < len(dm.Groups); j++ {
			gap := dm.Groups[i].Agg.Mean() - dm.Groups[j].Agg.Mean()
			if gap < 0 {
				gap = -gap
			}
			if gap > maxGap {
				maxGap = gap
			}
		}
	}
	if maxGap < 1.2 {
		t.Errorf("DM max pair gap = %.2f on the polarized title, want ≥ 1.2\ngroups: %+v",
			maxGap, dm.Groups)
	}
}

func TestExplainWithProfile(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Forrest Gump"`)
	s := DefaultSettings()
	s.Profile = cube.KeyAll.With(cube.Gender, int16(model.Female))
	ex, err := e.Explain(ExplainRequest{Query: q, Settings: s, Tasks: []Task{SimilarityMining}})
	if err != nil {
		t.Fatalf("Explain with profile: %v", err)
	}
	for _, g := range ex.Result(SimilarityMining).Groups {
		if g.Key.Has(cube.Gender) && g.Key[cube.Gender] != int16(model.Female) {
			t.Errorf("profile violated: %v", g.Key)
		}
	}
}

func TestExplainConjunctiveQuery(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `director:"Steven Spielberg" AND genre:Thriller`)
	ex, err := e.Explain(ExplainRequest{Query: q})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	for _, id := range ex.ItemIDs {
		it := e.Dataset().ItemByID(id)
		hasDir := false
		for _, d := range it.Directors {
			if d == "Steven Spielberg" {
				hasDir = true
			}
		}
		if !hasDir {
			t.Errorf("item %q not by Spielberg", it.Title)
		}
	}
}

func TestExploreGroup(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	ex, err := e.Explain(ExplainRequest{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	g := ex.Result(SimilarityMining).Groups[0]
	st, related, err := e.ExploreGroup(q, g.Key, 6)
	if err != nil {
		t.Fatalf("ExploreGroup: %v", err)
	}
	if st.Agg != g.Agg {
		t.Errorf("explore agg %+v != explain agg %+v", st.Agg, g.Agg)
	}
	if len(st.Timeline) == 0 {
		t.Error("no timeline")
	}
	hist := 0
	for s := model.MinScore; s <= model.MaxScore; s++ {
		hist += st.Histogram[s]
	}
	if hist != st.Agg.Count {
		t.Errorf("histogram total %d != count %d", hist, st.Agg.Count)
	}
	if g.State != "" && len(st.Cities) == 0 {
		t.Error("geo-anchored group has no city drill-down")
	}
	_ = related // sibling presence depends on pruning; exercised in explore tests
}

// TestExploreFullV1Unification pins the GroupExploration unification: the
// one-call exploration returns exactly what the legacy three-value
// ExploreGroup and the separate RefineGroup returned, and a negative
// refine limit skips the refinement stage.
func TestExploreFullV1Unification(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	ex, err := e.Explain(ExplainRequest{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	key := ex.Result(SimilarityMining).Groups[0].Key

	ge, err := e.ExploreFull(q, key, 6, 0)
	if err != nil {
		t.Fatalf("ExploreFull: %v", err)
	}
	st, related, err := e.ExploreGroup(q, key, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ge.Stats, *st) {
		t.Errorf("unified stats diverge:\n%+v\n%+v", ge.Stats, *st)
	}
	if !reflect.DeepEqual(ge.Related, related) {
		t.Errorf("unified related groups diverge")
	}
	refs, err := e.RefineGroup(q, key, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ge.Refinements, refs) {
		t.Errorf("unified refinements diverge:\n%+v\n%+v", ge.Refinements, refs)
	}

	limited, err := e.ExploreFull(q, key, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) > 2 && len(limited.Refinements) != 2 {
		t.Errorf("refine limit 2 returned %d refinements", len(limited.Refinements))
	}
	skipped, err := e.ExploreFull(q, key, 6, -1)
	if err != nil {
		t.Fatal(err)
	}
	if skipped.Refinements != nil {
		t.Errorf("refineLimit -1 still computed %d refinements", len(skipped.Refinements))
	}
}

func TestExploreGroupUnknownKey(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	bogus := cube.KeyAll.With(cube.State, cube.StateIndex("WY")).With(cube.Occupation, 8)
	if _, _, err := e.ExploreGroup(q, bogus, 4); err == nil {
		t.Error("unknown group should fail")
	}
}

func TestEvolution(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	points, err := e.Evolution(ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}})
	if err != nil {
		t.Fatalf("Evolution: %v", err)
	}
	if len(points) < 7 {
		t.Fatalf("evolution points = %d, want ≥ 7 yearly windows", len(points))
	}
	mined := 0
	for _, p := range points {
		if p.Err == nil && p.Explanation != nil {
			mined++
			if !p.Explanation.Query.Window.Contains(p.Window.From) {
				t.Error("explanation window mismatch")
			}
		}
	}
	if mined < 4 {
		t.Errorf("only %d windows mined successfully", mined)
	}
}

func TestRenderExploration(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	ex, err := e.Explain(ExplainRequest{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	v := e.RenderExploration(ex)
	if len(v.Maps) != 2 {
		t.Fatalf("maps = %d, want SM + DM", len(v.Maps))
	}
	ascii := v.ASCII(false)
	if !strings.Contains(ascii, "Similarity Mining") || !strings.Contains(ascii, "Diversity Mining") {
		t.Error("exploration missing task titles")
	}
	svg := v.Maps[0].SVG()
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("SVG rendering broken")
	}
}

func TestDeterministicExplain(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Jurassic Park"`)
	a, err := e.Explain(ExplainRequest{Query: q, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Explain(ExplainRequest{Query: q, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range a.Results {
		ga, gb := a.Results[ti].Groups, b.Results[ti].Groups
		if len(ga) != len(gb) {
			t.Fatalf("task %d group counts differ", ti)
		}
		for i := range ga {
			if ga[i].Key != gb[i].Key {
				t.Fatalf("task %d group %d: %v vs %v", ti, i, ga[i].Key, gb[i].Key)
			}
		}
	}
}

func TestOpenNilDataset(t *testing.T) {
	if _, err := Open(nil, nil); err == nil {
		t.Error("Open(nil) should fail")
	}
}

func TestGenerateReExports(t *testing.T) {
	cfg := SmallGenConfig()
	cfg.Users, cfg.Movies, cfg.Ratings = 100, 40, 1500
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != 100 {
		t.Errorf("users = %d", len(ds.Users))
	}
	if DefaultGenConfig().Ratings != 1_000_000 {
		t.Error("DefaultGenConfig should be 1M scale")
	}
}

func TestWriteLoadRoundTripViaFacade(t *testing.T) {
	cfg := SmallGenConfig()
	cfg.Users, cfg.Movies, cfg.Ratings = 80, 30, 900
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteDir(dir, ds); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ratings) != len(ds.Ratings) {
		t.Errorf("round trip ratings %d != %d", len(back.Ratings), len(ds.Ratings))
	}
}

func TestRefineGroup(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	ex, err := e.Explain(ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}})
	if err != nil {
		t.Fatal(err)
	}
	parent := ex.Result(SimilarityMining).Groups[0]
	refs, err := e.RefineGroup(q, parent.Key, 5)
	if err != nil {
		t.Fatalf("RefineGroup: %v", err)
	}
	if len(refs) == 0 {
		t.Fatal("no refinements for the top group")
	}
	if len(refs) > 5 {
		t.Fatalf("limit ignored: %d refinements", len(refs))
	}
	for _, r := range refs {
		if !parent.Key.Contains(r.Group.Key) {
			t.Errorf("refinement %v escapes parent %v", r.Group.Key, parent.Key)
		}
		if r.Group.Key.NumConstrained() != parent.Key.NumConstrained()+1 {
			t.Errorf("refinement %v is not one level deeper", r.Group.Key)
		}
		wantDelta := r.Group.Agg.Mean() - parent.Agg.Mean()
		if d := r.Delta - wantDelta; d > 1e-9 || d < -1e-9 {
			t.Errorf("delta %f, want %f", r.Delta, wantDelta)
		}
		if r.Added == "" {
			t.Error("refinement missing the added attribute name")
		}
	}
	// Unknown group fails.
	bogus := cube.KeyAll.With(cube.State, cube.StateIndex("WY")).With(cube.Occupation, 8)
	if _, err := e.RefineGroup(q, bogus, 3); err == nil {
		t.Error("unknown group should fail")
	}
}

func TestBrowseStates(t *testing.T) {
	e := testEngine(t)
	states := e.BrowseStates()
	if len(states) == 0 {
		t.Fatal("no browse states despite precompute")
	}
	total := 0
	seen := map[string]bool{}
	for i, st := range states {
		if seen[st.State] {
			t.Errorf("duplicate state %s", st.State)
		}
		seen[st.State] = true
		total += st.Agg.Count
		if i > 0 && states[i-1].Agg.Count < st.Agg.Count {
			t.Error("browse states not sorted by count")
		}
	}
	// Every rating belongs to exactly one state (all zips resolve).
	if total != len(e.Dataset().Ratings) {
		t.Errorf("state totals %d != ratings %d", total, len(e.Dataset().Ratings))
	}
	// Without precompute, browse is unavailable.
	ds, err := Generate(func() GenConfig {
		c := SmallGenConfig()
		c.Users, c.Movies, c.Ratings = 100, 40, 1200
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	bare, err := Open(ds, &Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bare.BrowseStates() != nil {
		t.Error("BrowseStates should be nil without precompute")
	}
}

func TestExplainConcurrent(t *testing.T) {
	e := testEngine(t)
	queries := []string{
		`movie:"Toy Story"`, `actor:"Tom Hanks"`, `movie:"Heat"`,
		`genre:Animation`, `director:"Woody Allen"`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := mustQuery(t, e, queries[(g+i)%len(queries)])
				if _, err := e.Explain(ExplainRequest{Query: q}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent explain: %v", err)
	}
}
