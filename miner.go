package maprat

import (
	"context"

	"repro/internal/model"
	"repro/internal/store"
)

// DatasetStats is the per-dataset summary served on /statsz and the boot
// log (entity counts, mean score, time range).
type DatasetStats = model.Stats

// Miner is the full serving surface of a mounted dataset: the five
// mining pipelines plus the identity and monitoring hooks the HTTP layer
// needs. *Engine implements it over a local store; the scatter-gather
// coordinator (internal/shard) implements it over a fleet of workers, so
// cmd/maprat-coord serves the exact /api/v1 surface of cmd/maprat-server.
// Implementations must be safe for concurrent use.
type Miner interface {
	// ExplainContext runs the full §2.3 pipeline for a query.
	ExplainContext(ctx context.Context, req ExplainRequest) (*Explanation, error)
	// ExploreFullContext computes one group's exploration (stats, related
	// groups, refinements) from the query's plan.
	ExploreFullContext(ctx context.Context, q Query, key Key, buckets, refineLimit int) (*GroupExploration, error)
	// RefineGroupContext returns a group's most deviant drill-deeper
	// refinements, capped at limit (0 = all).
	RefineGroupContext(ctx context.Context, q Query, key Key, limit int) ([]Refinement, error)
	// DrillMineContext mines city-anchored sub-groups inside a parent
	// explanation group.
	DrillMineContext(ctx context.Context, q Query, parent Key, task Task, s Settings) (*TaskResult, error)
	// EvolutionContext mines the query across consecutive yearly windows.
	EvolutionContext(ctx context.Context, req ExplainRequest) ([]EvolutionPoint, error)
	// BrowseStates returns every state's whole-log aggregate (nil when
	// the implementation cannot provide it).
	BrowseStates() []StateOverview

	// TimeRange returns the dataset's [min, max] rating timestamps.
	TimeRange() (int64, int64)
	// Fingerprint identifies the served dataset; it feeds the HTTP
	// layer's ETags, so two miners over the same data must agree on it.
	Fingerprint() uint64
	// DatasetStats summarizes the served dataset for monitoring.
	DatasetStats() DatasetStats
	// PlanStats snapshots the plan materialization tier's counters
	// (zero-valued when the tier is disabled).
	PlanStats() store.PlanStats
	// MineCount returns completed mining-pipeline executions.
	MineCount() uint64
	// Close releases the miner's resources; idempotent.
	Close() error
}

// DatasetStats summarizes the engine's dataset — the Miner monitoring
// hook behind /statsz and the server boot log.
func (e *Engine) DatasetStats() DatasetStats { return e.st.Dataset().Stats() }

// Compile-time check: the local engine serves the full Miner surface.
var _ Miner = (*Engine)(nil)
