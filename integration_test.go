package maprat

// End-to-end integration tests: the full pipeline over the MovieLens file
// format (generate → write → load → explain) must agree with the
// in-memory pipeline, and the facade must behave under the paper's demo
// walk-through sequence.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cube"
)

func TestIntegrationFileRoundTripExplain(t *testing.T) {
	cfg := SmallGenConfig()
	cfg.Users, cfg.Movies, cfg.Ratings = 600, 200, 30_000
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteDir(dir, ds); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}

	engMem, err := Open(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	engFile, err := Open(loaded, nil)
	if err != nil {
		t.Fatal(err)
	}

	q, err := engMem.ParseQuery(`movie:"Toy Story"`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := engMem.Explain(ExplainRequest{Query: q, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := engFile.Explain(ExplainRequest{Query: q, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRatings != b.NumRatings {
		t.Fatalf("ratings differ: %d vs %d", a.NumRatings, b.NumRatings)
	}
	if a.Overall != b.Overall {
		t.Fatalf("overall aggregates differ: %+v vs %+v", a.Overall, b.Overall)
	}
	for ti := range a.Results {
		ga, gb := a.Results[ti].Groups, b.Results[ti].Groups
		if len(ga) != len(gb) {
			t.Fatalf("task %d: %d vs %d groups", ti, len(ga), len(gb))
		}
		for i := range ga {
			if ga[i].Key != gb[i].Key || ga[i].Agg != gb[i].Agg {
				t.Fatalf("task %d group %d differs: %+v vs %+v", ti, i, ga[i], gb[i])
			}
		}
	}
}

func TestIntegrationCorruptFilesRejected(t *testing.T) {
	cfg := SmallGenConfig()
	cfg.Users, cfg.Movies, cfg.Ratings = 100, 40, 1500
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := []struct {
		name string
		file string
		line string
	}{
		{"garbage users line", "users.dat", "THIS IS NOT MOVIELENS\n"},
		{"score out of range", "ratings.dat", "1::1::99::978300000\n"},
		{"movie missing fields", "movies.dat", "999\n"},
		{"cast for unknown movie", "cast.dat", "424242::Nobody::Nobody\n"},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := WriteDir(dir, ds); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(filepath.Join(dir, c.file), os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(c.line); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if _, err := LoadDir(dir); err == nil {
				t.Errorf("corrupt %s accepted", c.file)
			}
		})
	}
}

// TestIntegrationDemoWalkthrough follows the §3 demonstration plan as one
// scripted session: search → explain → explore → drill deeper → time
// slider, on several of the paper's example queries.
func TestIntegrationDemoWalkthrough(t *testing.T) {
	e := testEngine(t)
	for _, qs := range []string{
		`movie:"The Social Network"`,
		`actor:"Tom Hanks"`,
		`title:"lord rings"`,
		`director:"Steven Spielberg" AND genre:Thriller`,
	} {
		t.Run(qs, func(t *testing.T) {
			q := mustQuery(t, e, qs)
			ex, err := e.Explain(ExplainRequest{Query: q})
			if err != nil {
				t.Fatalf("explain: %v", err)
			}
			sm := ex.Result(SimilarityMining)
			if sm == nil || len(sm.Groups) == 0 {
				t.Fatal("no SM groups")
			}
			top := sm.Groups[0]
			st, _, err := e.ExploreGroup(q, top.Key, 4)
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			if st.Agg.Count != top.Agg.Count {
				t.Errorf("explore count %d != explain count %d", st.Agg.Count, top.Agg.Count)
			}
			if _, err := e.RefineGroup(q, top.Key, 3); err != nil {
				t.Errorf("refine: %v", err)
			}
			points, err := e.Evolution(ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}})
			if err != nil {
				t.Fatalf("evolution: %v", err)
			}
			if len(points) == 0 {
				t.Error("no evolution windows")
			}
			v := e.RenderExploration(ex)
			if len(v.Maps) == 0 || !strings.HasPrefix(v.Maps[0].SVG(), "<svg") {
				t.Error("rendering broken")
			}
		})
	}
}

// TestIntegrationWoodyAllenSet reproduces §1's "set of items with common
// features" claim: mining over all movies directed by Woody Allen.
func TestIntegrationWoodyAllenSet(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `director:"Woody Allen"`)
	ex, err := e.Explain(ExplainRequest{Query: q})
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if len(ex.ItemIDs) < 3 {
		t.Fatalf("Woody Allen set has %d movies, want the 3 planted ones", len(ex.ItemIDs))
	}
	total := 0
	for _, id := range ex.ItemIDs {
		total += e.Store().RatingCount(id)
	}
	if ex.NumRatings != total {
		t.Errorf("set mining saw %d ratings, per-item sum is %d", ex.NumRatings, total)
	}
}

func TestIntegrationProfileNarrowsBrowse(t *testing.T) {
	// A profile with a state restricts every geo-anchored group to that
	// state — "the groups the user most self-identifies with".
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	s := DefaultSettings()
	s.Profile = cube.KeyAll.With(cube.State, cube.StateIndex("CA"))
	s.Coverage = 0.05 // a single state cannot cover 20% nationally
	ex, err := e.Explain(ExplainRequest{Query: q, Settings: s, Tasks: []Task{SimilarityMining}})
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	for _, g := range ex.Result(SimilarityMining).Groups {
		if g.State != "CA" {
			t.Errorf("profile state violated: %v", g.Key)
		}
	}
}

func TestIntegrationDrillMine(t *testing.T) {
	e := testEngine(t)
	q := mustQuery(t, e, `movie:"Toy Story"`)
	ex, err := e.Explain(ExplainRequest{Query: q, Tasks: []Task{SimilarityMining}})
	if err != nil {
		t.Fatal(err)
	}
	parent := ex.Result(SimilarityMining).Groups[0]

	s := DefaultSettings()
	s.K = 3
	s.Coverage = 0.25
	tr, err := e.DrillMine(q, parent.Key, SimilarityMining, s)
	if err != nil {
		t.Fatalf("DrillMine: %v", err)
	}
	if !tr.Feasible || len(tr.Groups) == 0 {
		t.Fatalf("drill result unusable: %+v", tr)
	}
	for _, g := range tr.Groups {
		if !g.Key.Has(cube.City) {
			t.Errorf("drill group %v lacks the city condition", g.Key)
		}
		if g.Agg.Count > parent.Agg.Count {
			t.Errorf("drill group %v larger than its parent", g.Key)
		}
		if g.Agg.Count == 0 {
			t.Errorf("empty drill group %v", g.Key)
		}
		if !strings.Contains(g.Phrase, "from") {
			t.Errorf("drill phrase %q lacks the city anchor", g.Phrase)
		}
	}
	// Every drill group's members are a subset of the parent's audience:
	// their total cannot exceed the parent's support times K (overlap aside).
	total := 0
	for _, g := range tr.Groups {
		total += g.Agg.Count
	}
	if total > parent.Agg.Count*len(tr.Groups) {
		t.Errorf("drill totals inconsistent: %d vs parent %d", total, parent.Agg.Count)
	}

	// Unknown parent fails cleanly.
	bogus := cube.KeyAll.With(cube.State, cube.StateIndex("WY")).With(cube.Occupation, 8)
	if _, err := e.DrillMine(q, bogus, SimilarityMining, s); err == nil {
		t.Error("unknown parent accepted")
	}
}
