// Command maprat-coord runs the scatter-gather coordinator: it serves
// the exact same web pages and /api/v1 surface as maprat-server, but
// answers queries by fanning sub-queries out over a fleet of
// maprat-server workers (each holding a full copy of one dataset),
// merging the gathered slices, and mining the merged cube locally. A
// complete distributed answer is byte-identical to the single-node one;
// a partial fleet degrades gracefully (the response carries a
// `degraded` field naming the missing shards) instead of failing.
//
//	maprat-coord -addr :8090 -worker http://h1:8080 -worker http://h2:8080
//
// /statsz gains a "shards" section: gather/hedge/failover counters and
// each worker's circuit-breaker state.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/jobs"
	"repro/internal/server"
	"repro/internal/shard"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("maprat-coord: ")

	var (
		addr      = flag.String("addr", ":8090", "listen address")
		dataset   = flag.String("dataset", "", "dataset mount to use on the workers (default: their default mount)")
		slots     = flag.Int("slots", 0, "consistent-hash slot count (0 = default 64)")
		seed      = flag.Int64("seed", 1, "jitter stream seed")
		timeout   = flag.Duration("timeout", server.DefaultRequestTimeout, "per-request mining timeout")
		accessLog = flag.Bool("access-log", true, "log /api/v1 requests")
		gzipOn    = flag.Bool("gzip", true, "offer gzip-compressed /api/v1 responses to clients that accept it")

		shardTimeout    = flag.Duration("shard-timeout", 0, "per-worker call deadline (0 = default 5s)")
		attempts        = flag.Int("attempts", 0, "tries per slot batch, first included (0 = default 2)")
		backoff         = flag.Duration("backoff", 0, "base retry backoff, doubling and jittered (0 = default 50ms)")
		hedgeAfter      = flag.Duration("hedge-after", 0, "hedging delay floor; negative disables hedging (0 = default 30ms)")
		breakerFailures = flag.Int("breaker-failures", 0, "consecutive failures that open a worker's circuit (0 = default 3)")
		breakerOpen     = flag.Duration("breaker-open", 0, "open-circuit cooldown before a half-open probe (0 = default 2s)")
		healthInterval  = flag.Duration("health-interval", 0, "background health-probe cadence (0 = default 1s)")
		bootTimeout     = flag.Duration("boot-timeout", 30*time.Second, "how long to keep retrying the boot handshake before giving up")

		jobWorkers = flag.Int("job-workers", 0, "async jobs executed concurrently (0 = default)")
		jobQueue   = flag.Int("job-queue", 0, "async job admission queue depth (0 = default)")
		jobTTL     = flag.Duration("job-ttl", 0, "how long finished job results stay retrievable (0 = default)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job mining timeout (0 = default)")
	)
	var workers multiFlag
	flag.Var(&workers, "worker", "worker base URL, e.g. http://host:8080 (repeatable, required)")
	flag.Parse()
	if len(workers) == 0 {
		log.Fatal("at least one -worker is required")
	}

	// SIGINT/SIGTERM drain in-flight requests before exiting; a second
	// signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)

	scfg := shard.Config{
		Workers:         workers,
		NumSlots:        *slots,
		Dataset:         *dataset,
		ShardTimeout:    *shardTimeout,
		Attempts:        *attempts,
		Backoff:         *backoff,
		HedgeAfter:      *hedgeAfter,
		BreakerFailures: *breakerFailures,
		BreakerOpen:     *breakerOpen,
		HealthInterval:  *healthInterval,
		Seed:            *seed,
	}
	coord, err := boot(ctx, scfg, *bootTimeout)
	if err != nil {
		log.Fatal(err)
	}
	st := coord.DatasetStats()
	log.Printf("fleet of %d worker(s) ready: %d ratings, %d movies, %d reviewers, fingerprint %016x",
		len(workers), st.Ratings, st.Items, st.Users, coord.Fingerprint())

	name := *dataset
	if name == "" {
		name = "default"
	}
	reg := maprat.NewSingleRegistry(name, coord, maprat.DatasetInfo{Source: "shards"})
	defer reg.Close()

	cfg := server.Config{
		RequestTimeout: *timeout,
		EnableGzip:     *gzipOn,
		Jobs: jobs.Config{
			Workers:    *jobWorkers,
			Queue:      *jobQueue,
			ResultTTL:  *jobTTL,
			JobTimeout: *jobTimeout,
		},
	}
	if *accessLog {
		cfg.AccessLog = log.Default()
	}
	log.Printf("listening on %s", *addr)
	srv := server.NewMulti(reg, cfg)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}

// boot retries the fleet handshake until it succeeds or the budget runs
// out: coordinator and workers usually start together (compose files,
// CI smoke scripts), so "no worker up yet" is the normal first second.
func boot(ctx context.Context, cfg shard.Config, budget time.Duration) (*shard.Coordinator, error) {
	deadline := time.Now().Add(budget)
	for {
		coord, err := shard.New(ctx, cfg)
		if err == nil {
			return coord, nil
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return nil, err
		}
		log.Printf("boot handshake failed (%v); retrying", err)
		select {
		case <-time.After(500 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
