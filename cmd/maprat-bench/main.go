// Command maprat-bench runs the experiment harness: one experiment per
// figure or claim of the paper (E1–E9 in DESIGN.md), printing the measured
// tables that EXPERIMENTS.md records.
//
//	maprat-bench                  # full MovieLens-1M scale (the paper's)
//	maprat-bench -scale small     # quick 80k-rating run
//	maprat-bench -only E2,E4      # a subset of experiments
package main

import (
	"flag"
	"log"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maprat-bench: ")

	var (
		scale = flag.String("scale", "full", "dataset scale: small|full")
		seed  = flag.Int64("seed", 1, "generator seed")
		only  = flag.String("only", "", "comma-separated experiment IDs to run (default all)")
	)
	flag.Parse()

	cfg := maprat.DefaultGenConfig()
	if *scale == "small" {
		cfg = maprat.SmallGenConfig()
	}
	cfg.Seed = *seed

	start := time.Now()
	log.Printf("generating %s-scale synthetic dataset (seed %d) ...", *scale, *seed)
	ds, err := maprat.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := ds.Stats()
	log.Printf("dataset: %d ratings / %d movies / %d users in %s",
		stats.Ratings, stats.Items, stats.Users, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("engine opened (indexes + global cube precompute) in %s",
		time.Since(start).Round(time.Millisecond))

	experiments := map[string]func(*maprat.Engine) bench.Report{
		"E1":  bench.E1Queries,
		"E2":  bench.E2SimilarityToyStory,
		"E3":  bench.E3Exploration,
		"E4":  bench.E4Controversial,
		"E5":  bench.E5Caching,
		"E6":  bench.E6QualityVsBaselines,
		"E7":  bench.E7Scalability,
		"E8":  bench.E8Rendering,
		"E9":  bench.E9TimeSlider,
		"E10": bench.E10Ablations,
	}
	if *only == "" {
		bench.RunAll(eng, os.Stdout)
		return
	}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		run, ok := experiments[id]
		if !ok {
			log.Fatalf("unknown experiment %q (have E1..E9)", id)
		}
		rep := run(eng)
		rep.Print(os.Stdout)
	}
}
