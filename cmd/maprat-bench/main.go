// Command maprat-bench runs the experiment harness: one experiment per
// figure or claim of the paper (E1–E9 in DESIGN.md), printing the measured
// tables that EXPERIMENTS.md records.
//
//	maprat-bench                  # full MovieLens-1M scale (the paper's)
//	maprat-bench -scale small     # quick 80k-rating run
//	maprat-bench -only E2,E4      # a subset of experiments
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/bench"
)

// snapshot is the machine-readable form of a bench run (-json): the
// committed BENCH_*.json files track the perf trajectory PR over PR.
type snapshot struct {
	Scale   string         `json:"scale"`
	Seed    int64          `json:"seed"`
	Ratings int            `json:"ratings"`
	Reports []bench.Report `json:"reports"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("maprat-bench: ")

	var (
		scale    = flag.String("scale", "full", "dataset scale: small|full")
		seed     = flag.Int64("seed", 1, "generator seed")
		only     = flag.String("only", "", "comma-separated experiment IDs to run (default all)")
		jsonPath = flag.String("json", "", "also write the reports as a JSON snapshot to this path")
	)
	flag.Parse()

	cfg := maprat.DefaultGenConfig()
	if *scale == "small" {
		cfg = maprat.SmallGenConfig()
	}
	cfg.Seed = *seed

	start := time.Now()
	log.Printf("generating %s-scale synthetic dataset (seed %d) ...", *scale, *seed)
	ds, err := maprat.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := ds.Stats()
	log.Printf("dataset: %d ratings / %d movies / %d users in %s",
		stats.Ratings, stats.Items, stats.Users, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("engine opened (join + indexes; global cube is lazy) in %s",
		time.Since(start).Round(time.Millisecond))

	// The experiment list, order and IDs come from the one registry in
	// internal/bench, so a newly registered experiment cannot be dropped
	// from default runs or snapshots by a stale list here.
	experiments := map[string]func(*maprat.Engine) bench.Report{}
	order := make([]string, 0, len(bench.Experiments))
	for _, e := range bench.Experiments {
		experiments[e.ID] = e.Run
		order = append(order, e.ID)
	}
	if *only != "" {
		order = nil
		for _, id := range strings.Split(*only, ",") {
			order = append(order, strings.TrimSpace(strings.ToUpper(id)))
		}
	}

	snap := snapshot{Scale: *scale, Seed: *seed, Ratings: stats.Ratings}
	for _, id := range order {
		run, ok := experiments[id]
		if !ok {
			log.Fatalf("unknown experiment %q (have %s..%s)", id,
				bench.Experiments[0].ID, bench.Experiments[len(bench.Experiments)-1].ID)
		}
		rep := run(eng)
		rep.Print(os.Stdout)
		snap.Reports = append(snap.Reports, rep)
	}
	if *jsonPath != "" {
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote snapshot %s", *jsonPath)
	}
}
