package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro"
	"repro/internal/ingest"
	"repro/internal/model"
	"repro/internal/snapshot"
)

// runSnap dispatches the `maprat snap` subcommand family:
//
//	maprat snap pack <data-dir> <out.msnap>            — pack a MovieLens directory
//	maprat snap info <file.msnap>                      — print header and sections
//	maprat snap compact <in.msnap> <wal> <out.msnap>   — fold a WAL into a fresh snapshot
func runSnap(args []string) {
	if len(args) == 0 {
		log.Fatal("usage: maprat snap pack|info|compact ...")
	}
	switch args[0] {
	case "pack":
		snapPack(args[1:])
	case "info":
		snapInfo(args[1:])
	case "compact":
		snapCompact(args[1:])
	default:
		log.Fatalf("unknown snap subcommand %q (want pack, info or compact)", args[0])
	}
}

func snapPack(args []string) {
	fs := flag.NewFlagSet("snap pack", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: maprat snap pack <data-dir> <out.msnap>")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	dir, out := fs.Arg(0), fs.Arg(1)

	start := time.Now()
	ds, err := maprat.LoadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	loadElapsed := time.Since(start)
	prov, err := maprat.DirProvenance(dir)
	if err != nil {
		log.Fatal(err)
	}
	meta := maprat.SnapshotMeta{
		Source:     "text",
		Provenance: prov,
		Extra:      map[string]string{"packed-from": dir},
	}
	start = time.Now()
	if err := maprat.WriteSnapshot(out, ds, meta); err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	size := int64(0)
	if fi, err := os.Stat(out); err == nil {
		size = fi.Size()
	}
	log.Printf("packed %s -> %s: %d ratings / %d movies / %d users, %d bytes (load %s, pack %s)",
		dir, out, st.Ratings, st.Items, st.Users, size,
		loadElapsed.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
}

// snapCompact replays a write-ahead log over its base snapshot and packs
// the merged rating log into a fresh snapshot: the appended epochs fold
// into the new base (epoch 1), so a server restarted on the compacted
// file with an empty WAL serves the same data the old (snapshot, WAL)
// pair did. The provenance hash carries through and the folded epoch
// range is recorded in the meta section.
func snapCompact(args []string) {
	fs := flag.NewFlagSet("snap compact", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: maprat snap compact <in.msnap> <wal> <out.msnap>")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 3 {
		fs.Usage()
		os.Exit(2)
	}
	in, walPath, out := fs.Arg(0), fs.Arg(1), fs.Arg(2)

	start := time.Now()
	snap, err := snapshot.Open(in)
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	// A snapshot is always base epoch 1; the WAL's records must count up
	// from there. ReadLog tolerates a torn tail exactly like server-side
	// replay, so compacting a crashed server's log keeps the same epochs
	// the restarted server would restore.
	batches, err := ingest.ReadLog(walPath, 1)
	if err != nil {
		log.Fatal(err)
	}
	base := snap.Dataset()
	appended := 0
	ratings := make([]model.Rating, len(base.Ratings), len(base.Ratings)+64)
	copy(ratings, base.Ratings)
	for _, b := range batches {
		ratings = append(ratings, b.Ratings...)
		appended += len(b.Ratings)
	}
	ds, err := model.NewDataset(base.Users, base.Items, ratings)
	if err != nil {
		log.Fatal(err)
	}
	lastEpoch := uint64(1 + len(batches))
	meta := maprat.SnapshotMeta{
		Source:     "compact",
		Provenance: snap.Provenance(),
		Extra: map[string]string{
			"compacted-from": in,
			"wal":            walPath,
			"epochs":         fmt.Sprintf("1-%d", lastEpoch),
		},
	}
	if err := maprat.WriteSnapshot(out, ds, meta); err != nil {
		log.Fatal(err)
	}
	size := int64(0)
	if fi, err := os.Stat(out); err == nil {
		size = fi.Size()
	}
	log.Printf("compacted %s + %s -> %s: epochs 1-%d (%d batches, %d appended ratings, %d total), %d bytes in %s",
		in, walPath, out, lastEpoch, len(batches), appended, len(ratings), size,
		time.Since(start).Round(time.Millisecond))
}

func snapInfo(args []string) {
	fs := flag.NewFlagSet("snap info", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: maprat snap info <file.msnap>")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)

	start := time.Now()
	snap, err := snapshot.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	elapsed := time.Since(start)

	h := snap.Header()
	lo, hi := snap.TimeRange()
	fmt.Printf("%s\n", path)
	fmt.Printf("  format version : %d\n", h.Version)
	fmt.Printf("  users          : %d\n", h.Users)
	fmt.Printf("  items          : %d\n", h.Items)
	fmt.Printf("  ratings        : %d\n", h.Ratings)
	fmt.Printf("  time range     : %s .. %s\n",
		time.Unix(lo, 0).UTC().Format("2006-01-02"), time.Unix(hi, 0).UTC().Format("2006-01-02"))
	fmt.Printf("  fingerprint    : %016x\n", h.Fingerprint)
	fmt.Printf("  log hash       : %016x\n", h.LogHash)
	fmt.Printf("  provenance     : %016x\n", h.Provenance)
	fmt.Printf("  size           : %d bytes\n", snap.Size())
	fmt.Printf("  mmap           : %v (zero-copy tuples: %v)\n", snap.Mapped(), snap.Aliased())
	fmt.Printf("  open           : %s\n", elapsed.Round(time.Microsecond))
	if meta := snap.Meta(); len(meta) > 0 {
		keys := make([]string, 0, len(meta))
		for k := range meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  meta:\n")
		for _, k := range keys {
			fmt.Printf("    %-12s : %s\n", k, meta[k])
		}
	}
	fmt.Printf("  sections:\n")
	for _, s := range h.Sections {
		fmt.Printf("    %-10s off=%-10d len=%-10d crc32c=%08x\n", s.Name(), s.Offset, s.Length, s.CRC)
	}
}
