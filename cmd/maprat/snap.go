package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"repro"
	"repro/internal/snapshot"
)

// runSnap dispatches the `maprat snap` subcommand family:
//
//	maprat snap pack <data-dir> <out.msnap>  — pack a MovieLens directory
//	maprat snap info <file.msnap>            — print header and sections
func runSnap(args []string) {
	if len(args) == 0 {
		log.Fatal("usage: maprat snap pack|info ...")
	}
	switch args[0] {
	case "pack":
		snapPack(args[1:])
	case "info":
		snapInfo(args[1:])
	default:
		log.Fatalf("unknown snap subcommand %q (want pack or info)", args[0])
	}
}

func snapPack(args []string) {
	fs := flag.NewFlagSet("snap pack", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: maprat snap pack <data-dir> <out.msnap>")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	dir, out := fs.Arg(0), fs.Arg(1)

	start := time.Now()
	ds, err := maprat.LoadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	loadElapsed := time.Since(start)
	prov, err := maprat.DirProvenance(dir)
	if err != nil {
		log.Fatal(err)
	}
	meta := maprat.SnapshotMeta{
		Source:     "text",
		Provenance: prov,
		Extra:      map[string]string{"packed-from": dir},
	}
	start = time.Now()
	if err := maprat.WriteSnapshot(out, ds, meta); err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	size := int64(0)
	if fi, err := os.Stat(out); err == nil {
		size = fi.Size()
	}
	log.Printf("packed %s -> %s: %d ratings / %d movies / %d users, %d bytes (load %s, pack %s)",
		dir, out, st.Ratings, st.Items, st.Users, size,
		loadElapsed.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
}

func snapInfo(args []string) {
	fs := flag.NewFlagSet("snap info", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: maprat snap info <file.msnap>")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	path := fs.Arg(0)

	start := time.Now()
	snap, err := snapshot.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Close()
	elapsed := time.Since(start)

	h := snap.Header()
	lo, hi := snap.TimeRange()
	fmt.Printf("%s\n", path)
	fmt.Printf("  format version : %d\n", h.Version)
	fmt.Printf("  users          : %d\n", h.Users)
	fmt.Printf("  items          : %d\n", h.Items)
	fmt.Printf("  ratings        : %d\n", h.Ratings)
	fmt.Printf("  time range     : %s .. %s\n",
		time.Unix(lo, 0).UTC().Format("2006-01-02"), time.Unix(hi, 0).UTC().Format("2006-01-02"))
	fmt.Printf("  fingerprint    : %016x\n", h.Fingerprint)
	fmt.Printf("  log hash       : %016x\n", h.LogHash)
	fmt.Printf("  provenance     : %016x\n", h.Provenance)
	fmt.Printf("  size           : %d bytes\n", snap.Size())
	fmt.Printf("  mmap           : %v (zero-copy tuples: %v)\n", snap.Mapped(), snap.Aliased())
	fmt.Printf("  open           : %s\n", elapsed.Round(time.Microsecond))
	if meta := snap.Meta(); len(meta) > 0 {
		keys := make([]string, 0, len(meta))
		for k := range meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  meta:\n")
		for _, k := range keys {
			fmt.Printf("    %-12s : %s\n", k, meta[k])
		}
	}
	fmt.Printf("  sections:\n")
	for _, s := range h.Sections {
		fmt.Printf("    %-10s off=%-10d len=%-10d crc32c=%08x\n", s.Name(), s.Offset, s.Length, s.CRC)
	}
}
