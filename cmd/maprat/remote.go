package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/viz"
	"repro/pkg/client"
)

// remoteOpts is everything the remote runners need beyond the client:
// the op to run, the shared knob set, and the output switches.
type remoteOpts struct {
	op     string
	params client.Params
	async  bool
	color  bool
}

// runRemote drives a live maprat-server through the pkg/client SDK: the
// same subcommands as local mode, but mining happens server-side. With
// -async the request is submitted as a job, progress streams to stderr
// over SSE, and the result is fetched once the job completes.
func runRemote(serverURL string, o remoteOpts) error {
	c, err := client.New(serverURL)
	if err != nil {
		return err
	}
	// Ctrl-C cancels the remote call; in async mode it also cancels the
	// submitted job server-side before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if o.async {
		return runRemoteAsync(ctx, c, o)
	}
	return renderRemote(ctx, c, o)
}

// renderRemote runs one synchronous endpoint and renders its payload.
func renderRemote(ctx context.Context, c *client.Client, o remoteOpts) error {
	switch o.op {
	case "group":
		g, err := c.Group(ctx, o.params)
		if err != nil {
			return err
		}
		renderRemoteGroup(g)
	case "drill":
		d, err := c.Drill(ctx, o.params)
		if err != nil {
			return err
		}
		renderRemoteDrill(d)
	case "evolution":
		ev, err := c.Evolution(ctx, o.params)
		if err != nil {
			return err
		}
		renderRemoteEvolution(ev)
	default:
		ex, err := c.Explain(ctx, o.params)
		if err != nil {
			return err
		}
		renderRemoteExplain(ex, o.color)
	}
	return nil
}

// runRemoteAppend posts one batch of new ratings from a JSON file (or
// stdin via "-") and prints the epoch the server accepted it at.
func runRemoteAppend(serverURL string, args []string) error {
	if len(args) != 1 {
		return errors.New("usage: maprat -server URL append <ratings.json | ->")
	}
	var (
		raw []byte
		err error
	)
	if args[0] == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(args[0])
	}
	if err != nil {
		return err
	}
	var ratings []client.RatingInput
	if err := jsonUnmarshal(raw, &ratings); err != nil {
		return fmt.Errorf("parse ratings: %w", err)
	}
	c, err := client.New(serverURL)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	resp, err := c.AppendRatings(ctx, "", ratings)
	if err != nil {
		return err
	}
	fmt.Printf("accepted %d ratings at epoch %d\n", resp.Accepted, resp.Epoch)
	return nil
}

// runRemoteAsync submits the op as a job, streams restart progress to
// stderr, and renders the completed result.
func runRemoteAsync(ctx context.Context, c *client.Client, o remoteOpts) error {
	job, err := c.SubmitJob(ctx, o.op, o.params)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "job %s submitted (%s)\n", job.ID, job.State)
	st, err := c.StreamJob(ctx, job.ID, func(ev client.JobEvent) error {
		switch {
		case ev.Type == "progress":
			if p := ev.Progress(); p != nil {
				fmt.Fprintf(os.Stderr, "job %s: restart %d/%d\n", job.ID, p.Done, p.Total)
			}
		case ev.Type == "state":
			if s := ev.Status(); s != nil {
				fmt.Fprintf(os.Stderr, "job %s: %s\n", job.ID, s.State)
			}
		case ev.Terminal():
			fmt.Fprintf(os.Stderr, "job %s: %s\n", job.ID, ev.Type)
		}
		return nil
	})
	if err != nil {
		// A job that ran and failed arrives as a typed error; the job is
		// already terminal, so there is nothing to cancel.
		var jfe *client.JobFailedError
		if errors.As(err, &jfe) {
			return fmt.Errorf("job %s failed: %s: %s", jfe.ID, jfe.Code, jfe.Message)
		}
		if ctx.Err() != nil {
			// Interrupted: cancel server-side on a fresh context so the
			// worker slot frees immediately.
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, _ = c.CancelJob(cctx, job.ID)
		}
		return err
	}
	switch st.State {
	case "done":
	case "canceled":
		return fmt.Errorf("job %s canceled", st.ID)
	default:
		return fmt.Errorf("job %s ended in unexpected state %q", st.ID, st.State)
	}
	return renderRemoteResult(st, o)
}

// renderRemoteResult decodes a done job's result document by op and
// renders it like the synchronous path.
func renderRemoteResult(st *client.JobStatus, o remoteOpts) error {
	decode := func(v any) error { return jsonUnmarshal(st.Result, v) }
	switch o.op {
	case "group":
		var g client.GroupResponse
		if err := decode(&g); err != nil {
			return err
		}
		renderRemoteGroup(&g)
	case "drill":
		var d client.DrillResponse
		if err := decode(&d); err != nil {
			return err
		}
		renderRemoteDrill(&d)
	case "evolution":
		var ev client.EvolutionResponse
		if err := decode(&ev); err != nil {
			return err
		}
		renderRemoteEvolution(&ev)
	default:
		var ex client.ExplainResponse
		if err := decode(&ex); err != nil {
			return err
		}
		renderRemoteExplain(&ex, o.color)
	}
	return nil
}

// renderRemoteExplain rebuilds the terminal choropleths from the wire
// DTO — the same viz layer local mode uses, fed from the API payload.
func renderRemoteExplain(ex *client.ExplainResponse, color bool) {
	out := &viz.Exploration{Query: ex.Query}
	for _, tr := range ex.Tasks {
		m := viz.Map{Title: fmt.Sprintf("%s — %s (%d ratings, overall μ=%.2f)",
			taskLongName(tr.Task), ex.Query, ex.NumRatings, ex.OverallMean)}
		for _, g := range tr.Groups {
			m.Shades = append(m.Shades, viz.Shade{
				State:   g.State,
				Mean:    g.Mean,
				Support: g.Count,
				Label:   g.Phrase,
				Icons:   g.Icons,
			})
		}
		out.Maps = append(out.Maps, m)
	}
	fmt.Print(out.ASCII(color))
	fmt.Printf("\n%d items, %d ratings, overall μ=%.2f σ=%.2f (mined remotely in %.0fms)\n",
		len(ex.ItemIDs), ex.NumRatings, ex.OverallMean, ex.OverallStd, ex.ElapsedMS)
	for _, tr := range ex.Tasks {
		fmt.Printf("%s: objective=%.4f coverage=%.0f%% (α=%.0f%%)\n",
			tr.Task, tr.Objective, tr.Coverage*100, tr.RelaxedCoverage*100)
	}
}

func taskLongName(task string) string {
	if task == "DM" {
		return "Diversity Mining (reviewers who disagree)"
	}
	return "Similarity Mining (reviewers who agree)"
}

func renderRemoteGroup(g *client.GroupResponse) {
	fmt.Printf("%s\n  μ=%.2f σ=%.2f n=%d share=%.1f%%\n\n",
		g.Group.Phrase, g.Group.Mean, g.Group.Std, g.Group.Count, g.Group.Share*100)
	fmt.Println("rating distribution:")
	maxCount := 1
	for _, n := range g.Histogram {
		if n > maxCount {
			maxCount = n
		}
	}
	for i, n := range g.Histogram {
		fmt.Printf("  %d★ %-40s %d\n", i+1, bar(n, maxCount), n)
	}
	if len(g.Cities) > 0 {
		fmt.Println("\ncity drill-down:")
		for _, c := range g.Cities {
			fmt.Printf("  %-20s μ=%.2f n=%d\n", c.City, c.Mean, c.Count)
		}
	}
	if len(g.Timeline) > 0 {
		fmt.Println("\nrating evolution:")
		for _, b := range g.Timeline {
			if b.Count == 0 {
				fmt.Printf("  %-18s —\n", b.Label)
				continue
			}
			fmt.Printf("  %-18s μ=%.2f n=%d\n", b.Label, b.Mean, b.Count)
		}
	}
	if len(g.Related) > 0 {
		fmt.Println("\nrelated groups:")
		for _, r := range g.Related {
			fmt.Printf("  %-55s μ=%.2f n=%d\n", r.Phrase, r.Mean, r.Count)
		}
	}
	if len(g.Refinements) > 0 {
		fmt.Println("\ndrill deeper (most deviant refinements):")
		for _, r := range g.Refinements {
			fmt.Printf("  %-55s μ=%.2f n=%-5d Δ%+.2f (+%s)\n",
				r.Group.Phrase, r.Group.Mean, r.Group.Count, r.Delta, r.Added)
		}
	}
}

func renderRemoteDrill(d *client.DrillResponse) {
	fmt.Printf("city-level drill-down mining inside %s:\n", d.Parent)
	for _, g := range d.Result.Groups {
		fmt.Printf("  %-55s μ=%.2f n=%d\n", g.Phrase, g.Mean, g.Count)
	}
	fmt.Printf("objective=%.4f coverage=%.0f%% of the group's ratings\n",
		d.Result.Objective, d.Result.Coverage*100)
}

func renderRemoteEvolution(ev *client.EvolutionResponse) {
	fmt.Printf("time slider — %s\n", ev.Query)
	for _, p := range ev.Points {
		if p.Error != nil || p.Explain == nil {
			msg := ""
			if p.Error != nil {
				msg = p.Error.Message
			}
			fmt.Printf("%d: (no result: %s)\n", p.Year, msg)
			continue
		}
		fmt.Printf("%d: %d ratings, μ=%.2f\n", p.Year, p.Explain.NumRatings, p.Explain.OverallMean)
		for _, tr := range p.Explain.Tasks {
			if tr.Task != "SM" {
				continue
			}
			for _, g := range tr.Groups {
				fmt.Printf("    %-55s μ=%.2f n=%d\n", g.Phrase, g.Mean, g.Count)
			}
		}
	}
}
