// Command maprat is the terminal front-end to the MapRat engine: it runs a
// query, mines the Similarity and Diversity interpretations, and renders
// the choropleth maps as text (optionally ANSI-colored).
//
// Examples:
//
//	maprat -q 'movie:"Toy Story"'
//	maprat -q 'actor:"Tom Hanks" AND genre:Thriller' -k 4 -coverage 0.25
//	maprat -q 'movie:"The Twilight Saga: Eclipse"' -framework -coverage 0.1 -k 2
//	maprat -q 'movie:"Toy Story"' -explore 'gender=male,state=CA'
//	maprat -q 'movie:"Toy Story"' -evolution
//
// With -server the same subcommands run against a live maprat-server
// through the pkg/client SDK instead of opening a local dataset; adding
// -async submits the work as a job and streams restart progress:
//
//	maprat -server http://localhost:8080 -q 'movie:"Toy Story"'
//	maprat -server http://localhost:8080 -async -q 'genre:Drama' -k 4
//
// The snap subcommand manages columnar dataset snapshots:
//
//	maprat snap pack ./ml-1m ./ml-1m.msnap   # pack a MovieLens directory
//	maprat snap info ./ml-1m.msnap           # print header and sections
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/cube"
	"repro/pkg/client"
)

func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

func main() {
	log.SetFlags(0)
	log.SetPrefix("maprat: ")

	// The snap subcommand family has positional arguments, so it is
	// dispatched before the main flag set parses.
	if len(os.Args) > 1 && os.Args[1] == "snap" {
		runSnap(os.Args[2:])
		return
	}

	var (
		dataDir   = flag.String("data", "", "MovieLens-format data directory (default: generate synthetic data)")
		scale     = flag.String("scale", "small", "synthetic data scale when -data is unset: small|full")
		seed      = flag.Int64("seed", 1, "generator seed")
		queryStr  = flag.String("q", `movie:"Toy Story"`, "item query, e.g. 'actor:\"Tom Hanks\" AND genre:Thriller'")
		k         = flag.Int("k", 3, "maximum number of groups per interpretation")
		coverage  = flag.Float64("coverage", 0.20, "minimum fraction of ratings the groups must cover")
		fromYear  = flag.Int("from", 0, "restrict ratings to years >= this")
		toYear    = flag.Int("to", 0, "restrict ratings to years <= this")
		profile   = flag.String("profile", "", "demographic profile, e.g. 'gender=female,age=under 18'")
		framework = flag.Bool("framework", false, "framework mode: groups need no geo-condition")
		color     = flag.Bool("color", false, "ANSI-colored choropleth tiles")
		exploreK  = flag.String("explore", "", "explore one group key, e.g. 'gender=male,state=CA'")
		drillK    = flag.String("drill", "", "drill-mine city sub-groups inside one group key, e.g. 'state=CA'")
		evolution = flag.Bool("evolution", false, "show the best SM groups per year (time slider)")
		serverURL = flag.String("server", "", "remote mode: run against a live maprat-server at this base URL")
		async     = flag.Bool("async", false, "remote mode: submit as an async job and stream progress (requires -server)")
	)
	flag.Parse()

	if *serverURL == "" && *async {
		log.Fatal("-async requires -server")
	}
	// `maprat -server URL append <file.json>` posts a batch of new
	// ratings; the file (or stdin via "-") holds a JSON array of
	// {"user_id","item_id","score","unix"} objects.
	if flag.NArg() > 0 && flag.Arg(0) == "append" {
		if *serverURL == "" {
			log.Fatal("append requires -server")
		}
		if err := runRemoteAppend(*serverURL, flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *serverURL != "" {
		o := remoteOpts{
			op:    "explain",
			async: *async,
			color: *color,
			params: client.Params{
				Q: *queryStr,
			},
		}
		if *k != 3 {
			o.params.K = k
		}
		if *coverage != 0.20 {
			o.params.Coverage = coverage
		}
		if *fromYear != 0 {
			o.params.From = fromYear
		}
		if *toYear != 0 {
			o.params.To = toYear
		}
		o.params.Profile = *profile
		if *framework {
			o.params.Geo = "off"
		}
		switch {
		case *exploreK != "":
			o.op = "group"
			o.params.Key = *exploreK
		case *drillK != "":
			o.op = "drill"
			o.params.Key = *drillK
		case *evolution:
			o.op = "evolution"
			o.params.Tasks = []string{"sm"}
		}
		if err := runRemote(*serverURL, o); err != nil {
			log.Fatal(err)
		}
		return
	}

	eng, err := openEngine(*dataDir, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}

	q, err := eng.ParseQuery(*queryStr)
	if err != nil {
		log.Fatalf("parse query: %v", err)
	}
	if *fromYear != 0 {
		q.Window.From = time.Date(*fromYear, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
		q.Window.HasFrom = true
	}
	if *toYear != 0 {
		q.Window.To = time.Date(*toYear+1, 1, 1, 0, 0, 0, 0, time.UTC).Unix() - 1
		q.Window.HasTo = true
	}

	settings := maprat.DefaultSettings()
	settings.K = *k
	settings.Coverage = *coverage
	if *profile != "" {
		key, err := cube.ParseKey(*profile)
		if err != nil {
			log.Fatalf("parse profile: %v", err)
		}
		settings.Profile = key
	}
	req := maprat.ExplainRequest{Query: q, Settings: settings}
	if *framework {
		free := cube.Config{RequireState: false, MinSupport: 8, MaxAVPairs: 2, SkipApex: true}
		req.CubeConfig = &free
	}

	switch {
	case *exploreK != "":
		if err := runExplore(eng, q, *exploreK); err != nil {
			log.Fatal(err)
		}
	case *drillK != "":
		if err := runDrill(eng, q, *drillK, settings); err != nil {
			log.Fatal(err)
		}
	case *evolution:
		if err := runEvolution(eng, req); err != nil {
			log.Fatal(err)
		}
	default:
		if err := runExplain(eng, req, *color); err != nil {
			log.Fatal(err)
		}
	}
}

func openEngine(dataDir, scale string, seed int64) (*maprat.Engine, error) {
	var (
		ds  *maprat.Dataset
		err error
	)
	switch {
	case dataDir != "":
		fmt.Fprintf(os.Stderr, "loading %s ...\n", dataDir)
		ds, err = maprat.LoadDir(dataDir)
	case scale == "full":
		fmt.Fprintln(os.Stderr, "generating MovieLens-1M-scale synthetic data ...")
		cfg := maprat.DefaultGenConfig()
		cfg.Seed = seed
		ds, err = maprat.Generate(cfg)
	default:
		cfg := maprat.SmallGenConfig()
		cfg.Seed = seed
		ds, err = maprat.Generate(cfg)
	}
	if err != nil {
		return nil, err
	}
	return maprat.Open(ds, nil)
}

func runExplain(eng *maprat.Engine, req maprat.ExplainRequest, color bool) error {
	ex, err := eng.Explain(req)
	if err != nil {
		return err
	}
	fmt.Print(eng.RenderExploration(ex).ASCII(color))
	fmt.Printf("\n%d items, %d ratings, overall μ=%.2f σ=%.2f — %s\n",
		len(ex.ItemIDs), ex.NumRatings, ex.Overall.Mean(), ex.Overall.Std(),
		ex.Elapsed.Round(time.Millisecond))
	for _, tr := range ex.Results {
		fmt.Printf("%s: objective=%.4f coverage=%.0f%% (α=%.0f%%)\n",
			tr.Task, tr.Objective, tr.Coverage*100, tr.RelaxedCoverage*100)
	}
	return nil
}

func runExplore(eng *maprat.Engine, q maprat.Query, keyStr string) error {
	key, err := cube.ParseKey(keyStr)
	if err != nil {
		return fmt.Errorf("parse key: %w", err)
	}
	st, related, err := eng.ExploreGroup(q, key, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n  μ=%.2f σ=%.2f n=%d share=%.1f%%\n\n",
		st.Phrase, st.Agg.Mean(), st.Agg.Std(), st.Agg.Count, st.Share*100)
	fmt.Println("rating distribution:")
	for s := 1; s < len(st.Histogram); s++ {
		fmt.Printf("  %d★ %-40s %d\n", s, bar(st.Histogram[s], maxHist(st.Histogram[:])), st.Histogram[s])
	}
	if len(st.Cities) > 0 {
		fmt.Println("\ncity drill-down:")
		for _, c := range st.Cities {
			fmt.Printf("  %-20s μ=%.2f n=%d\n", c.City, c.Agg.Mean(), c.Agg.Count)
		}
	}
	fmt.Println("\nrating evolution:")
	for _, b := range st.Timeline {
		if b.Agg.Count == 0 {
			fmt.Printf("  %-18s —\n", b.Label())
			continue
		}
		fmt.Printf("  %-18s μ=%.2f n=%d\n", b.Label(), b.Agg.Mean(), b.Agg.Count)
	}
	if len(related) > 0 {
		fmt.Println("\nrelated groups:")
		for _, g := range related {
			fmt.Printf("  %-55s μ=%.2f n=%d\n", g.Phrase, g.Agg.Mean(), g.Agg.Count)
		}
	}
	if refs, err := eng.RefineGroup(q, key, 6); err == nil && len(refs) > 0 {
		fmt.Println("\ndrill deeper (most deviant refinements):")
		for _, r := range refs {
			fmt.Printf("  %-55s μ=%.2f n=%-5d Δ%+.2f (+%s)\n",
				r.Group.Phrase, r.Group.Agg.Mean(), r.Group.Agg.Count, r.Delta, r.Added)
		}
	}
	return nil
}

func runDrill(eng *maprat.Engine, q maprat.Query, keyStr string, s maprat.Settings) error {
	key, err := cube.ParseKey(keyStr)
	if err != nil {
		return fmt.Errorf("parse key: %w", err)
	}
	s.Coverage = 0.25 // city sub-groups partition the parent; a quarter is realistic
	tr, err := eng.DrillMine(q, key, maprat.SimilarityMining, s)
	if err != nil {
		return err
	}
	fmt.Printf("city-level drill-down mining inside %s:\n", key.Phrase())
	for _, g := range tr.Groups {
		fmt.Printf("  %-55s μ=%.2f n=%d\n", g.Phrase, g.Agg.Mean(), g.Agg.Count)
	}
	fmt.Printf("objective=%.4f coverage=%.0f%% of the group's ratings\n", tr.Objective, tr.Coverage*100)
	return nil
}

func runEvolution(eng *maprat.Engine, req maprat.ExplainRequest) error {
	req.Tasks = []maprat.Task{maprat.SimilarityMining}
	points, err := eng.Evolution(req)
	if err != nil {
		return err
	}
	fmt.Printf("time slider — %s\n", req.Query.String())
	for _, p := range points {
		year := time.Unix(p.Window.From, 0).UTC().Year()
		if p.Err != nil || p.Explanation == nil {
			fmt.Printf("%d: (no result: %v)\n", year, p.Err)
			continue
		}
		fmt.Printf("%d: %d ratings, μ=%.2f\n", year,
			p.Explanation.NumRatings, p.Explanation.Overall.Mean())
		if sm := p.Explanation.Result(maprat.SimilarityMining); sm != nil {
			for _, g := range sm.Groups {
				fmt.Printf("    %-55s μ=%.2f n=%d\n", g.Phrase, g.Agg.Mean(), g.Agg.Count)
			}
		}
	}
	return nil
}

func bar(n, max int) string {
	if max == 0 {
		return ""
	}
	w := n * 40 / max
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

func maxHist(h []int) int {
	m := 1
	for _, v := range h {
		if v > m {
			m = v
		}
	}
	return m
}
