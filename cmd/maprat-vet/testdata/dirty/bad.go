package dirty

import "fmt"

func wrap(err error) error {
	return fmt.Errorf("x: %v", err)
}
