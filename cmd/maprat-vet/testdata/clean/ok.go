package clean

func OK() int { return 1 }
