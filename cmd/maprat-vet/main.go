// Command maprat-vet is MapRat's invariant checker: a multichecker over
// the nine custom analyzers in internal/analysis (determinism, ctxflow,
// envelope, aliasguard, clonecheck, lockcheck, mergeorder, errflow,
// hotalloc) plus the suppression-directive auditor. It runs in CI on
// every PR next to go vet and gofmt.
//
// Usage:
//
//	maprat-vet [flags] [packages]
//
//	maprat-vet ./...                    # whole repo, text findings
//	maprat-vet -format=json ./...       # machine-readable findings
//	maprat-vet -format=github ./...     # GitHub Actions ::error annotations
//	maprat-vet -analyzers=lockcheck,errflow ./internal/shard
//	maprat-vet -fix ./...               # apply suggested fixes in place
//	maprat-vet -diff ./...              # preview fixes; exit 1 if any
//	maprat-vet -cache ./...             # incremental per-package cache
//	maprat-vet -list                    # rule catalog
//	maprat-vet -sethash                 # analyzer-set hash (CI cache key)
//
// Exit status: 0 clean, 1 findings (or, with -diff, pending fixes),
// 2 usage or load failure.
//
// Findings are suppressed per line with
//
//	//maprat:allow(<analyzer>) <reason>
//
// where the reason is mandatory; unknown names, missing reasons and
// stale directives are findings themselves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("maprat-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format   = fs.String("format", "text", "output format: text, json, or github (GitHub Actions annotations)")
		jsonF    = fs.Bool("json", false, "shorthand for -format=json")
		names    = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		list     = fs.Bool("list", false, "print the rule catalog and exit")
		fix      = fs.Bool("fix", false, "apply suggested fixes to the source files in place")
		diff     = fs.Bool("diff", false, "print the suggested fixes as a unified diff; exit 1 if non-empty")
		useCache = fs.Bool("cache", false, "reuse per-package findings from the incremental result cache")
		cacheDir = fs.String("cachedir", "", "incremental cache location (default: user cache dir/maprat-vet, or $MAPRAT_VET_CACHE_DIR)")
		chdir    = fs.String("C", "", "run as if started in this directory")
		setHash  = fs.Bool("sethash", false, "print the analyzer-set hash (the CI cache key component) and exit")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%s\n\t%s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%s\n\t%s\n", analysis.SuppressName,
			"audit //maprat:allow(<analyzer>) <reason> directives: unknown analyzer names, missing reasons and stale directives are findings")
		return 0
	}

	var analyzers []*analysis.Analyzer
	if *names == "" {
		analyzers = analysis.All()
	} else {
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			a, ok := analysis.ByName(n)
			if !ok {
				fmt.Fprintf(stderr, "maprat-vet: unknown analyzer %q (valid: %s)\n", n, strings.Join(analyzerNames(), ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
		if len(analyzers) == 0 {
			fmt.Fprintf(stderr, "maprat-vet: -analyzers named no analyzer (valid: %s)\n", strings.Join(analyzerNames(), ", "))
			return 2
		}
	}

	if *setHash {
		fmt.Fprintln(stdout, analysis.AnalyzerSetHash(analyzers))
		return 0
	}
	if *fix && *diff {
		fmt.Fprintln(stderr, "maprat-vet: -fix and -diff are mutually exclusive (one writes, one previews)")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir := *chdir
	if dir == "" {
		var err error
		dir, err = os.Getwd()
		if err != nil {
			fmt.Fprintf(stderr, "maprat-vet: %v\n", err)
			return 2
		}
	}
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}

	res, err := analysis.RunWithOptions(dir, analysis.Options{
		Analyzers: analyzers,
		Cache:     *useCache,
		CacheDir:  *cacheDir,
	}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "maprat-vet: %v\n", err)
		return 2
	}
	if *useCache {
		fmt.Fprintf(stderr, "maprat-vet: %d package(s): %d analyzed, %d from cache\n",
			res.Packages, res.Analyzed, res.Cached)
	}

	if *diff {
		return runDiff(res, dir, stdout)
	}
	diags := res.Diags
	skippedFixes := 0
	if *fix {
		var code int
		diags, skippedFixes, code = applyFixes(res, stderr)
		if code != 0 {
			return code
		}
		// Fall through: unfixable findings still print and still gate.
	}

	if *jsonF {
		*format = "json"
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "maprat-vet: %v\n", err)
			return 2
		}
	case "github":
		// GitHub Actions workflow-command annotations: one ::error line
		// per finding, so the findings surface inline on the PR diff.
		for _, d := range diags {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=maprat-vet %s::%s\n",
				relPath(dir, d.File), d.Line, d.Col, d.Analyzer, d.Message)
		}
	case "text":
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", relPath(dir, d.File), d.Line, d.Col, d.Analyzer, d.Message)
		}
	default:
		fmt.Fprintf(stderr, "maprat-vet: unknown -format %q\n", *format)
		return 2
	}

	if len(diags) > 0 {
		fmt.Fprintf(stderr, "maprat-vet: %d finding(s)\n", len(diags))
		return 1
	}
	if skippedFixes > 0 {
		// Overlapping fixes were left unapplied; another -fix pass is needed.
		return 1
	}
	return 0
}

// runDiff renders every suggested fix as a unified diff without touching
// the tree. A non-empty diff exits 1 — the CI vet-fix-gate.
func runDiff(res *analysis.Result, dir string, stdout io.Writer) int {
	fixed, _, _, err := analysis.ApplyFixes(res.Diags, res.Sources)
	if err != nil {
		fmt.Fprintf(stdout, "maprat-vet: %v\n", err)
		return 2
	}
	files := make([]string, 0, len(fixed))
	for f := range fixed {
		files = append(files, f)
	}
	sort.Strings(files)
	any := false
	for _, f := range files {
		d := analysis.UnifiedDiff(relPath(dir, f), res.Sources[f], fixed[f])
		if d != "" {
			any = true
			fmt.Fprint(stdout, d)
		}
	}
	if any {
		return 1
	}
	return 0
}

// applyFixes writes every suggested fix back to disk and returns the
// findings that had no fix (they still print and still gate the exit
// code) plus the count of overlap-skipped fixes, which also gate.
func applyFixes(res *analysis.Result, stderr io.Writer) ([]analysis.Diagnostic, int, int) {
	fixed, applied, skipped, err := analysis.ApplyFixes(res.Diags, res.Sources)
	if err != nil {
		fmt.Fprintf(stderr, "maprat-vet: %v\n", err)
		return nil, 0, 2
	}
	files := make([]string, 0, len(fixed))
	for f := range fixed {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		if err := os.WriteFile(f, fixed[f], 0o644); err != nil {
			fmt.Fprintf(stderr, "maprat-vet: %v\n", err)
			return nil, 0, 2
		}
	}
	fmt.Fprintf(stderr, "maprat-vet: applied %d fix(es) across %d file(s)", applied, len(files))
	if skipped > 0 {
		fmt.Fprintf(stderr, ", skipped %d overlapping", skipped)
	}
	fmt.Fprintln(stderr)

	var remaining []analysis.Diagnostic
	for _, d := range res.Diags {
		if len(d.SuggestedFixes) == 0 {
			remaining = append(remaining, d)
		}
	}
	return remaining, skipped, 0
}

func analyzerNames() []string {
	var names []string
	for _, a := range analysis.All() {
		names = append(names, a.Name)
	}
	return names
}

// relPath shortens absolute finding paths to repo-relative ones; GitHub
// annotations require them, and the text output reads better.
func relPath(dir, file string) string {
	if rel, ok := strings.CutPrefix(file, dir+string(os.PathSeparator)); ok {
		return rel
	}
	return file
}
