// Command maprat-vet is MapRat's invariant checker: a multichecker over
// the five custom analyzers in internal/analysis (determinism, ctxflow,
// envelope, aliasguard, clonecheck) plus the suppression-directive
// auditor. It runs in CI on every PR next to go vet and gofmt.
//
// Usage:
//
//	maprat-vet [flags] [packages]
//
//	maprat-vet ./...                    # whole repo, text findings
//	maprat-vet -format=json ./...       # machine-readable findings
//	maprat-vet -format=github ./...     # GitHub Actions ::error annotations
//	maprat-vet -analyzers=determinism,ctxflow ./internal/core
//	maprat-vet -list                    # rule catalog
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// Findings are suppressed per line with
//
//	//maprat:allow(<analyzer>) <reason>
//
// where the reason is mandatory; unknown names, missing reasons and
// stale directives are findings themselves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		format = flag.String("format", "text", "output format: text, json, or github (GitHub Actions annotations)")
		jsonF  = flag.Bool("json", false, "shorthand for -format=json")
		names  = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		list   = flag.Bool("list", false, "print the rule catalog and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%s\n\t%s\n", a.Name, a.Doc)
		}
		fmt.Printf("%s\n\t%s\n", analysis.SuppressName,
			"audit //maprat:allow(<analyzer>) <reason> directives: unknown analyzer names, missing reasons and stale directives are findings")
		return 0
	}

	analyzers := analysis.All()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, n := range strings.Split(*names, ",") {
			a, ok := analysis.ByName(strings.TrimSpace(n))
			if !ok {
				fmt.Fprintf(os.Stderr, "maprat-vet: unknown analyzer %q (try -list)\n", n)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "maprat-vet: %v\n", err)
		return 2
	}

	diags, err := analysis.Run(dir, analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "maprat-vet: %v\n", err)
		return 2
	}

	if *jsonF {
		*format = "json"
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "maprat-vet: %v\n", err)
			return 2
		}
	case "github":
		// GitHub Actions workflow-command annotations: one ::error line
		// per finding, so the findings surface inline on the PR diff.
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=maprat-vet %s::%s\n",
				relPath(dir, d.File), d.Line, d.Col, d.Analyzer, d.Message)
		}
	case "text":
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(dir, d.File), d.Line, d.Col, d.Analyzer, d.Message)
		}
	default:
		fmt.Fprintf(os.Stderr, "maprat-vet: unknown -format %q\n", *format)
		return 2
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "maprat-vet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// relPath shortens absolute finding paths to repo-relative ones; GitHub
// annotations require them, and the text output reads better.
func relPath(dir, file string) string {
	if rel, ok := strings.CutPrefix(file, dir+string(os.PathSeparator)); ok {
		return rel
	}
	return file
}
