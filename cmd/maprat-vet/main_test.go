package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runVet drives the real CLI entry point and captures both streams.
func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCLI(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantOut    []string // substrings of stdout
		wantErr    []string // substrings of stderr
		wantOutLen int      // -1: don't care, 0: stdout must be empty
	}{
		{
			name:       "list prints the rule catalog",
			args:       []string{"-list"},
			wantCode:   0,
			wantOut:    []string{"determinism", "lockcheck", "mergeorder", "errflow", "hotalloc", "suppress"},
			wantOutLen: -1,
		},
		{
			name:       "unknown analyzer exits 2 with the valid names",
			args:       []string{"-analyzers=bogus", "./..."},
			wantCode:   2,
			wantErr:    []string{`unknown analyzer "bogus"`, "valid:", "lockcheck", "errflow"},
			wantOutLen: 0,
		},
		{
			name:       "empty analyzer list exits 2",
			args:       []string{"-analyzers=,", "./..."},
			wantCode:   2,
			wantErr:    []string{"named no analyzer", "valid:"},
			wantOutLen: 0,
		},
		{
			name:       "clean tree exits 0 silently",
			args:       []string{"-C", "testdata/clean", "./..."},
			wantCode:   0,
			wantOutLen: 0,
		},
		{
			name:       "findings exit 1 in text format",
			args:       []string{"-C", "testdata/dirty", "./..."},
			wantCode:   1,
			wantOut:    []string{"bad.go:6:9: errflow:"},
			wantErr:    []string{"1 finding(s)"},
			wantOutLen: -1,
		},
		{
			name:       "github format emits ::error annotations",
			args:       []string{"-C", "testdata/dirty", "-format=github", "./..."},
			wantCode:   1,
			wantOut:    []string{"::error file=bad.go,line=6,col=9,title=maprat-vet errflow::"},
			wantOutLen: -1,
		},
		{
			name:       "diff previews the fix and exits 1",
			args:       []string{"-C", "testdata/dirty", "-diff", "./..."},
			wantCode:   1,
			wantOut:    []string{"--- a/bad.go", "+++ b/bad.go", "-\treturn fmt.Errorf(\"x: %v\", err)", "+\treturn fmt.Errorf(\"x: %w\", err)"},
			wantOutLen: -1,
		},
		{
			name:       "diff on a clean tree exits 0 empty",
			args:       []string{"-C", "testdata/clean", "-diff", "./..."},
			wantCode:   0,
			wantOutLen: 0,
		},
		{
			name:       "fix and diff are mutually exclusive",
			args:       []string{"-fix", "-diff", "./..."},
			wantCode:   2,
			wantErr:    []string{"mutually exclusive"},
			wantOutLen: 0,
		},
		{
			name:       "unknown format exits 2",
			args:       []string{"-C", "testdata/clean", "-format=bogus", "./..."},
			wantCode:   2,
			wantErr:    []string{`unknown -format "bogus"`},
			wantOutLen: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := runVet(t, tc.args...)
			if code != tc.wantCode {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.wantCode, out, errOut)
			}
			if tc.wantOutLen == 0 && out != "" {
				t.Errorf("stdout should be empty, got:\n%s", out)
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(out, want) {
					t.Errorf("stdout missing %q:\n%s", want, out)
				}
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(errOut, want) {
					t.Errorf("stderr missing %q:\n%s", want, errOut)
				}
			}
		})
	}
}

func TestCLIJSONFormat(t *testing.T) {
	code, out, _ := runVet(t, "-C", "testdata/dirty", "-format=json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []map[string]any
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out)
	}
	if len(diags) != 1 || diags[0]["analyzer"] != "errflow" {
		t.Fatalf("unexpected findings: %v", diags)
	}
	if _, ok := diags[0]["suggested_fixes"]; !ok {
		t.Error("finding should carry its suggested fix in JSON output")
	}
}

func TestCLISetHash(t *testing.T) {
	code, out, _ := runVet(t, "-sethash")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !regexp.MustCompile(`^[0-9a-f]{32}\n$`).MatchString(out) {
		t.Fatalf("not a 32-hex-char hash: %q", out)
	}
	codeSub, outSub, _ := runVet(t, "-sethash", "-analyzers=lockcheck")
	if codeSub != 0 || outSub == out {
		t.Error("subset hash should differ from the full-set hash")
	}
}

// TestCLIFix applies the suggested fix to a scratch copy of the dirty
// fixture and verifies the second run comes back clean.
func TestCLIFix(t *testing.T) {
	work := t.TempDir()
	for _, f := range []string{"go.mod", "bad.go"} {
		b, err := os.ReadFile(filepath.Join("testdata/dirty", f))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(work, f), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	code, _, errOut := runVet(t, "-C", work, "-fix", "./...")
	if code != 0 {
		t.Fatalf("fix run exit = %d, want 0\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "applied 1 fix(es) across 1 file(s)") {
		t.Errorf("stderr missing apply summary:\n%s", errOut)
	}
	fixed, err := os.ReadFile(filepath.Join(work, "bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), `fmt.Errorf("x: %w", err)`) {
		t.Errorf("fix not applied:\n%s", fixed)
	}
	if code, _, _ := runVet(t, "-C", work, "./..."); code != 0 {
		t.Errorf("tree still dirty after -fix (exit %d)", code)
	}
}

// TestCLICacheStats pins the cache stats line and the warm-run path
// through the CLI.
func TestCLICacheStats(t *testing.T) {
	cacheDir := t.TempDir()
	code, _, cold := runVet(t, "-C", "testdata/clean", "-cache", "-cachedir", cacheDir, "./...")
	if code != 0 {
		t.Fatalf("cold exit = %d, want 0\n%s", code, cold)
	}
	if !strings.Contains(cold, "1 package(s): 1 analyzed, 0 from cache") {
		t.Errorf("cold stats line wrong:\n%s", cold)
	}
	code, _, warm := runVet(t, "-C", "testdata/clean", "-cache", "-cachedir", cacheDir, "./...")
	if code != 0 {
		t.Fatalf("warm exit = %d, want 0\n%s", code, warm)
	}
	if !strings.Contains(warm, "1 package(s): 0 analyzed, 1 from cache") {
		t.Errorf("warm stats line wrong:\n%s", warm)
	}
}
