// Command maprat-gen writes the synthetic MovieLens-1M-shaped dataset to
// disk in the original MovieLens file format (users.dat, movies.dat,
// ratings.dat) plus the IMDB-style cast.dat enrichment, so the data can be
// inspected or fed to other MovieLens tooling.
//
//	maprat-gen -out ./data            # full 1M-rating scale
//	maprat-gen -out ./data -scale small
//	maprat-gen -out ./data -users 2000 -movies 800 -ratings 150000
//	maprat-gen -snap ./data.msnap -scale small   # columnar snapshot
//
// -out and -snap may be combined; at least one is required. A snapshot
// records the generator's (config, seed) provenance hash in its header.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maprat-gen: ")

	var (
		out     = flag.String("out", "", "output directory (MovieLens text format)")
		snap    = flag.String("snap", "", "output snapshot file (.msnap columnar format)")
		scale   = flag.String("scale", "full", "preset scale: small|full")
		seed    = flag.Int64("seed", 1, "generator seed")
		users   = flag.Int("users", 0, "override user count")
		movies  = flag.Int("movies", 0, "override movie count")
		ratings = flag.Int("ratings", 0, "override target rating count")
	)
	flag.Parse()
	if *out == "" && *snap == "" {
		log.Fatal("at least one of -out / -snap is required")
	}

	cfg := maprat.DefaultGenConfig()
	if *scale == "small" {
		cfg = maprat.SmallGenConfig()
	}
	cfg.Seed = *seed
	if *users > 0 {
		cfg.Users = *users
	}
	if *movies > 0 {
		cfg.Movies = *movies
	}
	if *ratings > 0 {
		cfg.Ratings = *ratings
	}

	start := time.Now()
	ds, err := maprat.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := ds.Stats()
	log.Printf("generated %d ratings / %d movies / %d users in %s",
		stats.Ratings, stats.Items, stats.Users, time.Since(start).Round(time.Millisecond))
	if *out != "" {
		if err := maprat.WriteDir(*out, ds); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}
	if *snap != "" {
		meta := maprat.SnapshotMeta{
			Source:     "generated",
			Provenance: cfg.Provenance(),
			Extra: map[string]string{
				"generator": "maprat-gen",
				"scale":     *scale,
				"seed":      fmt.Sprint(cfg.Seed),
			},
		}
		if err := maprat.WriteSnapshot(*snap, ds, meta); err != nil {
			log.Fatal(err)
		}
		if fi, err := os.Stat(*snap); err == nil {
			log.Printf("wrote %s (%d bytes)", *snap, fi.Size())
		} else {
			log.Printf("wrote %s", *snap)
		}
	}
}
