// Command maprat-server runs the MapRat web demo (§3 of the paper): the
// Figure-1 search form, Figure-2 tabbed choropleth results, the Figure-3
// group exploration pages, a time-slider view and a JSON API.
//
//	maprat-server -addr :8080            # synthetic small dataset
//	maprat-server -scale full            # MovieLens-1M-scale synthetic data
//	maprat-server -data /path/to/ml-1m   # real MovieLens 1M files
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/jobs"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("maprat-server: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataDir   = flag.String("data", "", "MovieLens-format data directory (default: synthetic)")
		scale     = flag.String("scale", "small", "synthetic data scale when -data is unset: small|full")
		seed      = flag.Int64("seed", 1, "generator seed")
		timeout   = flag.Duration("timeout", server.DefaultRequestTimeout, "per-request mining timeout")
		maxBatch  = flag.Int("max-batch", 0, "max requests per /api/v1/batch call (0 = default)")
		accessLog = flag.Bool("access-log", true, "log /api/v1 requests")

		jobWorkers = flag.Int("job-workers", 0, "async jobs executed concurrently (0 = default)")
		jobQueue   = flag.Int("job-queue", 0, "async job admission queue depth (0 = default)")
		jobTTL     = flag.Duration("job-ttl", 0, "how long finished job results stay retrievable (0 = default)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job mining timeout (0 = default)")
		gzipOn     = flag.Bool("gzip", true, "offer gzip-compressed /api/v1 responses to clients that accept it")
	)
	flag.Parse()

	start := time.Now()
	var (
		ds  *maprat.Dataset
		err error
	)
	switch {
	case *dataDir != "":
		log.Printf("loading %s ...", *dataDir)
		ds, err = maprat.LoadDir(*dataDir)
	case *scale == "full":
		log.Print("generating MovieLens-1M-scale synthetic data ...")
		cfg := maprat.DefaultGenConfig()
		cfg.Seed = *seed
		ds, err = maprat.Generate(cfg)
	default:
		cfg := maprat.SmallGenConfig()
		cfg.Seed = *seed
		ds, err = maprat.Generate(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		log.Fatal(err)
	}
	stats := ds.Stats()
	log.Printf("ready in %s: %d ratings, %d movies, %d reviewers",
		time.Since(start).Round(time.Millisecond), stats.Ratings, stats.Items, stats.Users)
	log.Printf("listening on %s", *addr)

	// SIGINT/SIGTERM drain in-flight requests before exiting; a second
	// signal kills the process the default way (AfterFunc restores the
	// default disposition as soon as the first signal lands).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	cfg := server.Config{
		RequestTimeout: *timeout,
		MaxBatch:       *maxBatch,
		EnableGzip:     *gzipOn,
		Jobs: jobs.Config{
			Workers:    *jobWorkers,
			Queue:      *jobQueue,
			ResultTTL:  *jobTTL,
			JobTimeout: *jobTimeout,
		},
	}
	if *accessLog {
		cfg.AccessLog = log.Default()
	}
	srv := server.NewWithConfig(eng, cfg)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}
