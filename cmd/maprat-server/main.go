// Command maprat-server runs the MapRat web demo (§3 of the paper): the
// Figure-1 search form, Figure-2 tabbed choropleth results, the Figure-3
// group exploration pages, a time-slider view and a JSON API.
//
//	maprat-server -addr :8080            # synthetic small dataset
//	maprat-server -scale full            # MovieLens-1M-scale synthetic data
//	maprat-server -data /path/to/ml-1m   # real MovieLens 1M files
//
// -snapshot mounts a .msnap columnar snapshot (memory-mapped, near-instant
// open) and repeats to serve several datasets from one process; API
// requests pick one via ?dataset=<name> or the X-Maprat-Dataset header
// (the name is the snapshot's file base, the first mount is the default):
//
//	maprat-server -snapshot a.msnap -snapshot b.msnap
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/jobs"
	"repro/internal/server"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("maprat-server: ")

	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataDir   = flag.String("data", "", "MovieLens-format data directory (default: synthetic)")
		scale     = flag.String("scale", "small", "synthetic data scale when -data is unset: small|full")
		seed      = flag.Int64("seed", 1, "generator seed")
		timeout   = flag.Duration("timeout", server.DefaultRequestTimeout, "per-request mining timeout")
		maxBatch  = flag.Int("max-batch", 0, "max requests per /api/v1/batch call (0 = default)")
		accessLog = flag.Bool("access-log", true, "log /api/v1 requests")

		jobWorkers = flag.Int("job-workers", 0, "async jobs executed concurrently (0 = default)")
		jobQueue   = flag.Int("job-queue", 0, "async job admission queue depth (0 = default)")
		jobTTL     = flag.Duration("job-ttl", 0, "how long finished job results stay retrievable (0 = default)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job mining timeout (0 = default)")
		gzipOn     = flag.Bool("gzip", true, "offer gzip-compressed /api/v1 responses to clients that accept it")
		walPath    = flag.String("wal", "", "arm live ingestion with a write-ahead log at this path (single-dataset servers only)")
	)
	var snapshots multiFlag
	flag.Var(&snapshots, "snapshot", "mount a .msnap snapshot (repeatable; first mount is the default dataset)")
	flag.Parse()

	reg := maprat.NewRegistry()
	defer reg.Close()
	if err := mountDatasets(reg, *dataDir, snapshots, *scale, *seed); err != nil {
		log.Fatal(err)
	}
	for _, m := range reg.Mounts() {
		st := m.Engine.DatasetStats()
		log.Printf("dataset %q (%s) ready in %s: %d ratings, %d movies, %d reviewers, fingerprint %016x",
			m.Name, m.Info.Source, m.Info.OpenDuration.Round(time.Millisecond),
			st.Ratings, st.Items, st.Users, m.Engine.Fingerprint())
	}
	if *walPath != "" {
		// Live ingestion writes to one store; mounting several datasets
		// would leave "which one accepts writes" ambiguous.
		if reg.Len() != 1 {
			log.Fatalf("-wal requires exactly one mounted dataset (got %d)", reg.Len())
		}
		eng, ok := reg.Default().Engine.(*maprat.Engine)
		if !ok {
			log.Fatal("-wal requires a local engine mount")
		}
		epoch, err := eng.EnableIngest(*walPath)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("live ingestion armed: wal %s, epoch %d", *walPath, epoch)
	}
	log.Printf("listening on %s", *addr)

	// SIGINT/SIGTERM drain in-flight requests before exiting; a second
	// signal kills the process the default way (AfterFunc restores the
	// default disposition as soon as the first signal lands).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	cfg := server.Config{
		RequestTimeout: *timeout,
		MaxBatch:       *maxBatch,
		EnableGzip:     *gzipOn,
		Jobs: jobs.Config{
			Workers:    *jobWorkers,
			Queue:      *jobQueue,
			ResultTTL:  *jobTTL,
			JobTimeout: *jobTimeout,
		},
	}
	if *accessLog {
		cfg.AccessLog = log.Default()
	}
	srv := server.NewMulti(reg, cfg)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}

// mountDatasets opens every requested dataset into reg: the text
// directory first (so -data keeps its place as the default), then each
// snapshot in flag order, falling back to synthetic data only when
// nothing else was asked for.
func mountDatasets(reg *maprat.Registry, dataDir string, snapshots []string, scale string, seed int64) error {
	if dataDir != "" {
		log.Printf("loading %s ...", dataDir)
		start := time.Now()
		ds, err := maprat.LoadDir(dataDir)
		if err != nil {
			return err
		}
		eng, err := maprat.Open(ds, nil)
		if err != nil {
			return err
		}
		info := maprat.DatasetInfo{Source: "text", Path: dataDir, OpenDuration: time.Since(start)}
		if err := reg.Add(mountName(reg, dataDir), eng, info); err != nil {
			return err
		}
	}
	for _, path := range snapshots {
		start := time.Now()
		eng, err := maprat.OpenSnapshot(path, nil)
		if err != nil {
			return fmt.Errorf("snapshot %s: %w", path, err)
		}
		info := maprat.DatasetInfo{Source: "snapshot", Path: path, OpenDuration: time.Since(start)}
		if fi, err := os.Stat(path); err == nil {
			info.FileSize = fi.Size()
		}
		if err := reg.Add(mountName(reg, path), eng, info); err != nil {
			eng.Close()
			return err
		}
	}
	if reg.Len() > 0 {
		return nil
	}
	start := time.Now()
	cfg := maprat.SmallGenConfig()
	if scale == "full" {
		log.Print("generating MovieLens-1M-scale synthetic data ...")
		cfg = maprat.DefaultGenConfig()
	}
	cfg.Seed = seed
	ds, err := maprat.Generate(cfg)
	if err != nil {
		return err
	}
	eng, err := maprat.Open(ds, nil)
	if err != nil {
		return err
	}
	info := maprat.DatasetInfo{Source: "generated", OpenDuration: time.Since(start)}
	return reg.Add("default", eng, info)
}

// mountName derives a mount name from a path: the file base without the
// .msnap extension, suffixed with -2, -3, ... on collision so mounting
// two same-named snapshots from different directories still works.
func mountName(reg *maprat.Registry, path string) string {
	base := strings.TrimSuffix(filepath.Base(filepath.Clean(path)), ".msnap")
	if base == "" || base == "." || base == string(filepath.Separator) {
		base = "dataset"
	}
	name := base
	for i := 2; ; i++ {
		if _, taken := reg.Lookup(name); !taken {
			return name
		}
		name = fmt.Sprintf("%s-%d", base, i)
	}
}
